#include "runtime/executor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/json.hpp"
#include "runtime/episode_rig.hpp"
#include "runtime/fastforward.hpp"
#include "util/log.hpp"

namespace redcr::runtime {

std::string JobAbort::describe() const {
  const std::string what =
      reason == Reason::kRestartRetriesExhausted
          ? "restart retries exhausted after " +
                std::to_string(restart_attempts) + " attempt(s)"
          : "no retained checkpoint generation passed validation";
  return "job aborted (episode " + std::to_string(episode) + ", wallclock " +
         std::to_string(time) + "s): " + what;
}

JobExecutor::JobExecutor(JobConfig config, WorkloadFactory factory)
    : config_(std::move(config)),
      map_(config_.num_virtual, config_.redundancy),
      factory_(std::move(factory)) {
  if (!factory_) throw std::invalid_argument("JobExecutor: null factory");
  config_.fail.validate();
  config_.storage.validate();
  config_.ckpt_faults.validate();
  config_.ckpt_write_retry.validate("JobConfig.ckpt_write_retry");
  config_.restart_retry.validate("JobConfig.restart_retry");
  config_.sdc.validate();
  if (config_.sdc.enabled() && config_.replication != Replication::kPush)
    throw std::invalid_argument(
        "JobExecutor: the SDC fault model requires push replication — "
        "detection is the push protocol's replica voting, which the pull "
        "protocol does not perform");
  if (config_.ckpt_retention < 1)
    throw std::invalid_argument(
        "JobExecutor: ckpt_retention must be >= 1, got " +
        std::to_string(config_.ckpt_retention));
  if (config_.checkpoint_enabled && config_.checkpoint_interval <= 0.0)
    throw std::invalid_argument(
        "JobExecutor: checkpointing enabled but no interval given "
        "(compute one with model::daly_interval)");
  if (config_.live_failure_semantics && config_.checkpoint_enabled)
    throw std::invalid_argument(
        "JobExecutor: live failure semantics cannot join the collective "
        "checkpoint quiesce (dead ranks cannot participate) — disable "
        "checkpointing or use the paper's bookkeeping mode");
  if (config_.hierarchy.enabled()) {
    config_.hierarchy.validate(static_cast<int>(map_.num_physical()));
    if (!config_.checkpoint_enabled)
      throw std::invalid_argument(
          "JobExecutor: a storage hierarchy requires checkpointing enabled "
          "(there is nothing to store otherwise)");
    if (config_.ckpt_forked)
      throw std::invalid_argument(
          "JobExecutor: forked checkpointing is incompatible with a storage "
          "hierarchy — use the hierarchy's async flush for overlapped "
          "drains instead");
  }
  workloads_.reserve(map_.num_physical());
  for (std::size_t p = 0; p < map_.num_physical(); ++p) {
    const int virtual_rank = map_.virtual_of(static_cast<red::Rank>(p));
    workloads_.push_back(
        factory_(virtual_rank, static_cast<int>(map_.num_virtual())));
    if (!workloads_.back())
      throw std::invalid_argument("JobExecutor: factory returned null");
  }
}

EpisodeResult JobExecutor::run_episode(
    long start_iteration, std::uint64_t episode_index,
    ckpt::CheckpointStore& store, ckpt::StorageHierarchy* hierarchy,
    int epoch_base, const failure::FaultProcess* faults,
    double useful_work_base,
    const std::vector<failure::InfectionRecord>& seed_infections) {
  EpisodeRig::Options opts;
  opts.start_iteration = start_iteration;
  opts.episode_index = episode_index;
  opts.epoch_base = epoch_base;
  opts.useful_work_base = useful_work_base;
  opts.inject = config_.inject_failures;
  opts.recorder = config_.recorder;
  opts.journal = config_.journal;
  EpisodeRig rig(config_, map_, workloads_, store, hierarchy, faults,
                 seed_infections, opts);
  rig.start();
  rig.run();
  return rig.collect();
}


JobReport JobExecutor::run() {
  JobReport report;
  report.num_physical = map_.num_physical();

  // Unreliable-C/R state lives at job scope: checkpoint generations persist
  // across episodes, and one fault oracle is shared by storage, controller
  // and the restart loop. With the default config (no faults, retention 1)
  // everything below reproduces the reliable pipeline bit for bit; the new
  // metrics are gated on `unreliable` so reliable-mode exports are
  // unchanged byte for byte as well.
  ckpt::CheckpointStore store(config_.ckpt_retention);
  std::optional<ckpt::StorageHierarchy> hierarchy_state;
  if (config_.hierarchy.enabled())
    hierarchy_state.emplace(config_.hierarchy,
                            static_cast<int>(map_.num_physical()));
  ckpt::StorageHierarchy* hier =
      hierarchy_state ? &*hierarchy_state : nullptr;
  std::optional<failure::FaultProcess> fault_process;
  // The hierarchy's per-level probabilities ride the same oracle (and the
  // same seed knob), so a hierarchy with faults needs one even when the
  // flat probabilities are all zero.
  if (config_.ckpt_faults.enabled() || config_.hierarchy.any_fault_prob() ||
      config_.sdc.enabled())
    fault_process.emplace(config_.ckpt_faults, config_.sdc);
  const failure::FaultProcess* faults =
      fault_process ? &*fault_process : nullptr;
  const bool unreliable =
      faults != nullptr || config_.ckpt_retention > 1 || hier != nullptr;

  // Fast-forward engine selection. kAuto quietly runs the event engine for
  // configurations the driver cannot prove bit-identical; an explicit
  // kFastForward request gets a warning naming the reason. Either way the
  // whole-config fallback is visible as report.ff.fallbacks >= 1.
  std::unique_ptr<FastForwardDriver> ff;
  if (config_.engine != ExecMode::kEvent) {
    std::string reason;
    if (FastForwardDriver::supported(config_, workloads_, &reason)) {
      ff = std::make_unique<FastForwardDriver>(config_, map_, factory_);
    } else {
      report.ff.fallbacks = 1;
      if (config_.engine == ExecMode::kFastForward) {
        REDCR_LOG_WARN << "job: fast-forward engine requested but the "
                          "configuration is not coverable ("
                       << reason << ") — running the event engine";
      }
    }
  }

  // Populates the per-level lifetime counters; called at every return.
  int epoch_base = 0;
  std::vector<std::uint64_t> level_writes_total;
  std::vector<std::uint64_t> level_wfail_total;
  if (hier != nullptr) {
    level_writes_total.assign(
        static_cast<std::size_t>(hier->num_levels()), 0);
    level_wfail_total.assign(static_cast<std::size_t>(hier->num_levels()), 0);
  }
  auto finalize_levels = [&](JobReport& r) {
    if (hier == nullptr) return;
    r.levels.resize(static_cast<std::size_t>(hier->num_levels()));
    for (int l = 0; l < hier->num_levels(); ++l) {
      auto& out = r.levels[static_cast<std::size_t>(l)];
      const auto& lvl = hier->level(l);
      out.kind = ckpt::level_kind_name(lvl.params.kind);
      out.writes = level_writes_total[static_cast<std::size_t>(l)];
      out.write_failures = level_wfail_total[static_cast<std::size_t>(l)];
      out.commits = lvl.commits;
      out.fetches = lvl.fetches;
      out.defeated = lvl.defeated;
    }
  };

  obs::Recorder* rec = config_.recorder;
  if (rec != nullptr) {
    rec->trace().set_track_name(obs::kJobPid, "job");
    for (std::size_t p = 0; p < map_.num_physical(); ++p)
      rec->trace().set_track_name(obs::rank_pid(static_cast<int>(p)),
                                  "rank " + std::to_string(p));
  }

  obs::Journal* jnl = config_.journal;
  // Appends the terminal job-end event: the executor's accounting totals,
  // rendered with the journal's exact number formatting so the analyzer's
  // blame reconciliation is an equality check, not a re-derivation.
  auto journal_job_end = [&](const JobReport& r) {
    if (jnl == nullptr) return;
    jnl->set_time_offset(0.0);
    obs::Journal::Event ev;
    ev.type = "job-end";
    ev.t = r.wallclock;
    ev.dur = r.wallclock;
    std::string d = "outcome=";
    d += r.completed ? "completed" : (r.abort ? "aborted" : "gave-up");
    const auto kv = [&d](const char* key, double value) {
      d += ';';
      d += key;
      d += '=';
      obs::json::append_number(d, value);
    };
    kv("wallclock", r.wallclock);
    kv("useful", r.useful_work);
    kv("ckpt", r.checkpoint_time);
    kv("rework", r.rework_time);
    kv("restart", r.restart_time);
    kv("flush", r.flush_time);
    ev.detail = std::move(d);
    jnl->append(ev);
  };
  if (jnl != nullptr) {
    jnl->set_time_offset(0.0);
    obs::Journal::Event ev;
    ev.type = "job-begin";
    ev.t = 0.0;
    std::string d;
    const auto kv = [&d](const char* key, double value) {
      if (!d.empty()) d += ';';
      d += key;
      d += '=';
      obs::json::append_number(d, value);
    };
    kv("procs", static_cast<double>(map_.num_physical()));
    kv("virtual", static_cast<double>(map_.num_virtual()));
    kv("redundancy", config_.redundancy);
    kv("interval",
       config_.checkpoint_enabled ? config_.checkpoint_interval : 0.0);
    kv("restart_cost", config_.restart_cost);
    kv("levels", static_cast<double>(config_.hierarchy.levels.size()));
    ev.detail = std::move(d);
    jnl->append(ev);
  }

  long start_iteration = 0;
  // Infections recorded inside the generation the previous restart restored:
  // an *unverified* image resurrects them in the next episode's monitor.
  std::vector<failure::InfectionRecord> seed_infections;
  for (int episode = 0; episode < config_.max_episodes; ++episode) {
    for (auto& workload : workloads_) workload->restore(start_iteration);
    // Episode engines restart at t = 0; job time resumes where the previous
    // episode (plus its restart gap) left off.
    if (rec != nullptr) rec->set_time_offset(report.wallclock);
    if (jnl != nullptr) {
      jnl->set_time_offset(report.wallclock);
      obs::Journal::Event ev;
      ev.type = "episode-begin";
      ev.t = 0.0;  // episode-local; the offset places it at job time
      ev.episode = episode;
      ev.iteration = start_iteration;
      jnl->append(ev);
    }
    REDCR_LOG_INFO << "job: episode " << episode << " begin at wallclock "
                   << report.wallclock << "s, iteration " << start_iteration;
    std::optional<EpisodeResult> ff_res;
    if (ff != nullptr)
      ff_res = ff->try_episode(start_iteration,
                               static_cast<std::uint64_t>(episode), store,
                               hier, epoch_base, faults, report.useful_work);
    const EpisodeResult res =
        ff_res ? std::move(*ff_res)
               : run_episode(start_iteration,
                             static_cast<std::uint64_t>(episode), store, hier,
                             epoch_base, faults, report.useful_work,
                             seed_infections);
    if (ff != nullptr) {
      if (ff_res) {
        ++report.ff.episodes_fast;
        report.ff.epochs_skipped +=
            static_cast<std::uint64_t>(res.checkpoints);
      } else {
        ++report.ff.fallbacks;
        report.ff.replay_events += res.events;
      }
    }
    epoch_base += res.checkpoints + res.failed_checkpoints;
    if (hier != nullptr) {
      for (std::size_t l = 0; l < level_writes_total.size(); ++l) {
        level_writes_total[l] += res.level_writes[l];
        level_wfail_total[l] += res.level_write_failures[l];
      }
      report.flush_time += res.flush_drain;
      report.flushes_completed += res.flushes_completed;
      report.flushes_lost += res.flushes_lost;
    }

    EpisodeTrace ep;
    ep.index = episode;
    ep.start_wallclock = report.wallclock;
    ep.elapsed = res.elapsed;
    ep.start_iteration = start_iteration;
    ep.snapshot_iteration =
        res.snapshot.valid ? res.snapshot.iteration : start_iteration;
    ep.checkpoints = res.checkpoints;
    ep.replica_deaths = static_cast<int>(res.physical_failures);
    ep.end = res.finished  ? EpisodeTrace::End::kCompleted
             : res.failure ? EpisodeTrace::End::kSphereDeath
             : res.sdc     ? EpisodeTrace::End::kSdcRollback
                           : EpisodeTrace::End::kAbandoned;
    if (res.failure) ep.dead_sphere = res.failure->sphere;
    ep.flushes_lost = res.flushes_lost;
    report.trace.push_back(ep);

    // An SDC rollback's waste events all chain to the *injection* event —
    // the rollback's true root cause — exactly as a sphere death's chain to
    // the kill.
    const std::uint64_t cause = res.failure ? res.failure->cause
                                : res.sdc   ? res.sdc->injection_event
                                            : 0;
    if (jnl != nullptr) {
      obs::Journal::Event ev;
      ev.type = "episode-end";
      ev.t = res.elapsed;
      ev.cause = cause;
      ev.episode = episode;
      ev.dur = res.elapsed;
      if (res.failure) ev.sphere = res.failure->sphere;
      ev.detail = res.finished    ? "completed"
                  : res.failure   ? "sphere-death"
                                  : "sdc-detected";
      jnl->append(ev);
    }

    // An uncorrectable detection invalidates every *unverified* generation:
    // images committed after the (then-undetected) injection hold corrupt
    // state, so recovery must fall back past them (Aupy et al.'s two-level
    // recovery). Each invalidation is billed to the infection that tainted
    // the generation.
    if (res.sdc) {
      int invalidated = 0;
      const auto journal_invalidated = [&](int level,
                                           const ckpt::Generation& gen) {
        ++invalidated;
        if (jnl == nullptr) return;
        obs::Journal::Event ev;
        ev.type = "ckpt-invalidated";
        ev.t = res.elapsed;
        ev.cause =
            gen.infections.empty() ? cause : gen.infections.front().cause;
        ev.episode = episode;
        ev.level = level;
        ev.epoch = gen.snapshot.epoch;
        ev.iteration = gen.snapshot.iteration;
        jnl->append(ev);
      };
      if (hier != nullptr) {
        for (const auto& inv : hier->invalidate_unverified())
          journal_invalidated(inv.level, inv.gen);
      } else {
        for (const auto& gen : store.invalidate_unverified())
          journal_invalidated(-1, gen);
      }
      report.sdc_invalidated_ckpts += invalidated;
      report.trace.back().sdc_invalidated = invalidated;
      if (rec != nullptr && invalidated > 0) {
        rec->metrics().add("ckpt.invalidated",
                           static_cast<double>(invalidated));
        rec->instant("ckpt-invalidated", "ckpt", obs::kJobPid, res.elapsed);
      }
      if (invalidated > 0) {
        REDCR_LOG_WARN << "job: SDC detection invalidated " << invalidated
                       << " unverified checkpoint generation(s)";
      }
    }

    ++report.episodes;
    report.checkpoints += res.checkpoints;
    report.failed_checkpoints += res.failed_checkpoints;
    report.ckpt_write_failures += res.write_failures;
    report.wasted_write_time += res.wasted_write_time;
    report.physical_failures += static_cast<int>(res.physical_failures);
    report.messages += res.messages;
    report.engine_events += res.events;
    report.network_contention_wait += res.contention_wait;
    report.red_mismatches_detected += res.mismatches_detected;
    report.red_mismatches_corrected += res.mismatches_corrected;
    report.red_messages_compared += res.messages_compared;
    report.red_mismatches_undetected += res.mismatches_undetected;
    report.sdc_injected +=
        res.sdc_stats.injected_inflight + res.sdc_stats.injected_atrest;
    report.sdc_corrected += res.sdc_stats.corrected_deliveries;
    report.sdc_undetected += res.sdc_stats.undetected_deliveries;

    // The terminal flush drain is wallclock but neither work nor checkpoint
    // time — it gets its own accounting bucket (flush_time, above).
    const double work_this_episode =
        res.elapsed - res.checkpoint_time - res.flush_drain;
    report.checkpoint_time += res.checkpoint_time;
    if (rec != nullptr && res.flush_drain > 0.0)
      rec->add("time.flush", res.flush_drain);
    if (rec != nullptr) {
      // The episode span is recorded episode-locally ([0, elapsed]); the
      // offset set above places it at its job-time position.
      rec->span("episode " + std::to_string(episode), "episode", obs::kJobPid,
                0.0, res.elapsed);
      obs::Registry& metrics = rec->metrics();
      metrics.add("job.episodes");
      metrics.add("time.checkpoint", res.checkpoint_time);
      metrics
          .histogram("episode.elapsed",
                     {60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0,
                      43200.0})
          .observe(res.elapsed);
    }

    if (res.finished) {
      // Every work second of the final episode survives into the result.
      report.wallclock += res.elapsed;
      report.useful_work += work_this_episode;
      report.completed = true;
      report.sdc_infected_final = res.sdc_infected_end;
      if (res.sdc_infected_end > 0) {
        REDCR_LOG_WARN << "job: completed with " << res.sdc_infected_end
                       << " rank(s) still carrying an undetected infection — "
                          "the result is silently corrupt";
      }
      if (rec != nullptr) rec->add("time.useful_work", work_this_episode);
      REDCR_LOG_INFO << "job: episode " << episode
                     << " completed the workload after " << res.elapsed
                     << "s (" << res.checkpoints << " checkpoints, "
                     << res.physical_failures << " replica deaths)";
      finalize_levels(report);
      journal_job_end(report);
      return report;
    }

    // Sphere death or SDC rollback: pay the restart (with retries under
    // unreliable C/R) and resume from the newest checkpoint generation that
    // validates. The restart-failure draw index spans both kinds, so an
    // SDC-free run's sphere-death stream is untouched by the SDC knobs.
    if (res.failure) {
      ++report.job_failures;
    } else {
      ++report.sdc_rollbacks;
      report.sdc_detection_latency += res.sdc->latency;
    }
    const auto restart_index = static_cast<std::uint64_t>(
        report.job_failures + report.sdc_rollbacks - 1);
    bool restarted = false;
    int attempts = 0;
    double span_begin = res.elapsed;  // episode-local time for the recorder
    // The killed episode's elapsed time is charged together with the first
    // attempt as one `elapsed + cost` addition — the reliable pipeline's
    // historical association, which keeps its exports bit-identical.
    double pending = res.elapsed;
    while (attempts < config_.restart_retry.max_attempts) {
      const double cost = config_.restart_retry.delay_before(attempts) +
                          config_.restart_cost;
      report.wallclock += pending + cost;
      pending = 0.0;
      report.restart_time += cost;
      const bool failed =
          faults != nullptr && faults->restart_fails(restart_index, attempts);
      ++attempts;
      if (rec != nullptr) {
        // Every attempt is its own "restart" span so the restart spans keep
        // tiling time.restart exactly, retries and backoff included.
        rec->span("restart", "restart", obs::kJobPid, span_begin,
                  span_begin + cost);
        rec->add("time.restart", cost);
        if (unreliable) rec->add("restart.attempts");
      }
      if (jnl != nullptr) {
        obs::Journal::Event ev;
        ev.type = "restart-attempt";
        ev.t = span_begin;
        ev.cause = cause;
        ev.episode = episode;
        ev.attempt = attempts;
        ev.dur = cost;
        jnl->append(ev);
      }
      span_begin += cost;
      if (!failed) {
        restarted = true;
        break;
      }
      ++report.failed_restarts;
      if (rec != nullptr) {
        rec->instant("restart-failed", "restart", obs::kJobPid, span_begin);
        rec->add("restart.failures");
      }
      if (jnl != nullptr) {
        obs::Journal::Event ev;
        ev.type = "restart-failed";
        ev.t = span_begin;
        ev.cause = cause;
        ev.episode = episode;
        ev.attempt = attempts;
        jnl->append(ev);
      }
      REDCR_LOG_WARN << "job: restart attempt " << attempts
                     << " after episode " << episode << " failed";
    }
    report.restart_attempts += attempts;
    report.trace.back().restart_attempts = attempts;

    if (!restarted) {
      // Every restart attempt failed: structured abort. The episode's work
      // is lost (rework); the attempts were already charged to restart.
      report.rework_time += work_this_episode;
      JobAbort abort;
      abort.reason = JobAbort::Reason::kRestartRetriesExhausted;
      abort.time = report.wallclock;
      abort.episode = episode;
      abort.restart_attempts = attempts;
      report.abort = abort;
      report.trace.back().end = EpisodeTrace::End::kAborted;
      if (rec != nullptr) {
        rec->add("time.rework", work_this_episode);
        rec->add("job.aborts");
        rec->instant("job-abort", "restart", obs::kJobPid, span_begin);
      }
      if (jnl != nullptr) {
        obs::Journal::Event rw;
        rw.type = "rework";
        rw.t = span_begin;
        rw.cause = cause;
        rw.episode = episode;
        rw.dur = work_this_episode;
        jnl->append(rw);
        obs::Journal::Event ev;
        ev.type = "abort";
        ev.t = span_begin;
        ev.cause = cause;
        ev.episode = episode;
        ev.attempt = attempts;
        ev.detail = "restart-retries-exhausted";
        jnl->append(ev);
      }
      REDCR_LOG_WARN << "job: " << abort.describe();
      finalize_levels(report);
      journal_job_end(report);
      return report;
    }

    // Restart-time validation: restore the newest generation whose image
    // set validates, falling back to N-1, N-2, ... past corrupt ones.
    // Hierarchy mode fetches from the cheapest level that survived the
    // failure's dead set instead, walking the same newest-first fallback
    // inside the serving level.
    ckpt::RestoreResult restore;
    double fetch_seconds = 0.0;
    int restore_level = -1;  // journal: serving level, -1 = flat store
    if (hier != nullptr) {
      const ckpt::StorageHierarchy::FetchResult fetched =
          hier->fetch(res.dead_ranks, config_.image_bytes);
      restore.found = fetched.found;
      restore.had_generations = fetched.had_generations;
      restore.generation = fetched.generation;
      restore.fallback_depth = fetched.fallback_depth;
      fetch_seconds = fetched.fetch_seconds;
      if (jnl != nullptr) {
        for (const int defeated : fetched.defeated_levels) {
          obs::Journal::Event ev;
          ev.type = "level-defeated";
          ev.t = span_begin;
          ev.cause = cause;
          ev.episode = episode;
          ev.level = defeated;
          jnl->append(ev);
        }
      }
      if (fetched.found) {
        restore_level = fetched.level;
        report.trace.back().restore_level = fetched.level;
        if (rec != nullptr) {
          rec->metrics().add("restore.level" + std::to_string(fetched.level) +
                             ".serves");
        }
        REDCR_LOG_INFO << "job: restore served by level " << fetched.level
                       << " (" << fetched.levels_defeated
                       << " level(s) destroyed by the failure)";
      }
      // Levels the failure destroyed were dropped inside fetch(); surviving
      // cache levels persist across the relaunch (SCR's scavenge/rebuild),
      // so an early kill in the next episode can still restore from them.
    } else {
      restore = store.restore();
    }
    if (restore.found && fetch_seconds > 0.0) {
      // Charge the serving level's read cost: wallclock the restart pays on
      // top of the flat restart cost R (which models relaunch, not I/O).
      report.wallclock += fetch_seconds;
      report.restart_time += fetch_seconds;
      report.fetch_time += fetch_seconds;
      if (rec != nullptr) {
        rec->span("fetch", "restart", obs::kJobPid, span_begin,
                  span_begin + fetch_seconds);
        rec->add("time.restart", fetch_seconds);
        rec->add("restart.fetch_seconds", fetch_seconds);
      }
      if (jnl != nullptr) {
        obs::Journal::Event ev;
        ev.type = "fetch";
        ev.t = span_begin;
        ev.cause = cause;
        ev.episode = episode;
        ev.level = restore_level;
        ev.dur = fetch_seconds;
        jnl->append(ev);
      }
      span_begin += fetch_seconds;
    }
    if (!restore.found && restore.had_generations) {
      // Every retained generation failed validation: nothing to restart
      // from. (With no generations at all we restart from scratch instead —
      // nothing was ever checkpointed, so nothing was lost.)
      report.rework_time += work_this_episode;
      JobAbort abort;
      abort.reason = JobAbort::Reason::kNoValidCheckpoint;
      abort.time = report.wallclock;
      abort.episode = episode;
      abort.restart_attempts = attempts;
      report.abort = abort;
      report.trace.back().end = EpisodeTrace::End::kAborted;
      if (rec != nullptr) {
        rec->add("time.rework", work_this_episode);
        rec->add("job.aborts");
        rec->instant("job-abort", "restart", obs::kJobPid, span_begin);
      }
      if (jnl != nullptr) {
        obs::Journal::Event rw;
        rw.type = "rework";
        rw.t = span_begin;
        rw.cause = cause;
        rw.episode = episode;
        rw.dur = work_this_episode;
        jnl->append(rw);
        obs::Journal::Event ev;
        ev.type = "abort";
        ev.t = span_begin;
        ev.cause = cause;
        ev.episode = episode;
        ev.attempt = attempts;
        ev.detail = "no-valid-checkpoint";
        jnl->append(ev);
      }
      REDCR_LOG_WARN << "job: " << abort.describe();
      finalize_levels(report);
      journal_job_end(report);
      return report;
    }

    double credit = 0.0;
    double excess = 0.0;
    if (restore.found) {
      const ckpt::Generation& gen = restore.generation;
      start_iteration = gen.snapshot.iteration;
      // Keep the trace's "restart point" truthful under fallback (equal to
      // the episode snapshot in the reliable pipeline).
      report.trace.back().snapshot_iteration = start_iteration;
      // The job's credited useful work snaps to what the generation banked:
      // work this episode up to its snapshot is newly credited, and work
      // credited beyond a fallen-back generation moves back to rework. A
      // same-episode generation credits its snapshot's in-episode work
      // directly (not `cumulative - useful_work`, whose rounding would
      // perturb the reliable pipeline's bit-identical sums).
      if (gen.episode == static_cast<std::uint64_t>(episode)) {
        credit = gen.snapshot.work_elapsed;
      } else {
        excess = std::max(0.0, report.useful_work - gen.cumulative_useful);
      }
      report.trace.back().fallback_depth = restore.fallback_depth;
      if (restore.fallback_depth > 0) {
        ++report.fallback_restores;
        if (rec != nullptr)
          rec->instant("fallback-restore", "restart", obs::kJobPid,
                       span_begin);
        REDCR_LOG_WARN << "job: newest checkpoint failed validation; fell "
                          "back "
                       << restore.fallback_depth << " generation(s) to epoch "
                       << gen.snapshot.epoch << " (episode " << gen.episode
                       << ", checksum " << gen.checksum << "), discarding "
                       << excess << "s of credited work";
      }
      if (rec != nullptr && unreliable) {
        rec->metrics()
            .histogram("restore.fallback_depth", {0.0, 1.0, 2.0, 4.0, 8.0})
            .observe(restore.fallback_depth);
        if (excess > 0.0) rec->add("restore.invalidated_work", excess);
      }
      if (jnl != nullptr) {
        obs::Journal::Event ev;
        ev.type = "restore";
        ev.t = span_begin;
        ev.cause = cause;
        ev.episode = episode;
        ev.level = restore_level;
        ev.epoch = gen.snapshot.epoch;
        ev.iteration = start_iteration;
        ev.attempt = restore.fallback_depth;
        ev.saved = gen.cumulative_useful;
        jnl->append(ev);
      }
    } else if (res.sdc) {
      // Nothing restorable survived the invalidation: the infection may
      // predate every retained image, so the job restarts from scratch and
      // every second credited so far is reclaimed as rework — billed to the
      // injection through this episode's cause chain.
      start_iteration = 0;
      excess = report.useful_work;
      report.trace.back().snapshot_iteration = 0;
      REDCR_LOG_WARN << "job: no verified checkpoint survived the SDC "
                        "rollback; restarting from scratch and reclaiming "
                     << excess << "s of credited work";
    }
    // The restored generation's recorded infections (empty for a verified
    // one) seed the next episode's monitor: restoring an unverified image
    // resurrects its infections.
    seed_infections = restore.found
                          ? restore.generation.infections
                          : std::vector<failure::InfectionRecord>{};
    // Without any usable generation the next episode restarts from the same
    // iteration as this one did, and everything this episode did is rework.
    report.useful_work += credit - excess;
    report.rework_time += work_this_episode - credit + excess;
    if (res.sdc && !res.failure)
      report.sdc_rework += work_this_episode - credit + excess;
    if (rec != nullptr) {
      obs::Registry& metrics = rec->metrics();
      metrics.add("time.useful_work", credit - excess);
      metrics.add("time.rework", work_this_episode - credit + excess);
    }
    if (jnl != nullptr) {
      // The failure's rework bill: this episode's work minus what the
      // restored generation banked (plus credited work a fallback
      // invalidated). Emitted even at 0 so blame sums stay an exact tiling
      // of the executor's rework_time.
      obs::Journal::Event ev;
      ev.type = "rework";
      ev.t = span_begin;
      ev.cause = cause;
      ev.episode = episode;
      ev.dur = work_this_episode - credit + excess;
      jnl->append(ev);
    }
    REDCR_LOG_INFO << "job: episode " << episode << " killed at "
                   << res.elapsed << "s"
                   << (res.failure
                           ? " (sphere " +
                                 std::to_string(res.failure->sphere) + " died)"
                       : res.sdc ? std::string(" (SDC detected at rank " +
                                               std::to_string(res.sdc->rank) +
                                               ")")
                                 : std::string())
                   << "; restarting from iteration " << start_iteration;
  }
  REDCR_LOG_WARN << "job: gave up after " << config_.max_episodes
                 << " episodes without completing";
  finalize_levels(report);
  journal_job_end(report);
  return report;  // completed == false: gave up after max_episodes
}

JobReport JobExecutor::run_failure_free(JobConfig config,
                                        WorkloadFactory factory) {
  config.inject_failures = false;
  config.checkpoint_enabled = false;
  JobExecutor executor(std::move(config), std::move(factory));
  return executor.run();
}

}  // namespace redcr::runtime
