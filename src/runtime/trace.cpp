#include "runtime/trace.hpp"

#include <cstdio>

namespace redcr::runtime {

std::string render_trace(const std::vector<EpisodeTrace>& trace) {
  std::string out;
  char line[160];
  for (const EpisodeTrace& ep : trace) {
    const char* outcome = "completed";
    char death[48];
    if (ep.end == EpisodeTrace::End::kSphereDeath) {
      std::snprintf(death, sizeof death, "sphere %d died", ep.dead_sphere);
      outcome = death;
    } else if (ep.end == EpisodeTrace::End::kAbandoned) {
      outcome = "abandoned";
    }
    char progress[40];
    if (ep.end == EpisodeTrace::End::kCompleted) {
      std::snprintf(progress, sizeof progress, "it %ld->done",
                    ep.start_iteration);
    } else {
      std::snprintf(progress, sizeof progress, "it %ld->%ld",
                    ep.start_iteration, ep.snapshot_iteration);
    }
    std::snprintf(line, sizeof line,
                  "  #%-3d %9.1fs %+10.1fs  %-14s %2d ckpt  %2d deaths  %s\n",
                  ep.index, ep.start_wallclock, ep.elapsed, progress,
                  ep.checkpoints, ep.replica_deaths, outcome);
    out += line;
  }
  return out;
}

}  // namespace redcr::runtime
