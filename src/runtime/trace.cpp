#include "runtime/trace.hpp"

#include <cstdio>

namespace redcr::runtime {

std::string render_trace(const std::vector<EpisodeTrace>& trace) {
  std::string out;
  char line[160];
  for (const EpisodeTrace& ep : trace) {
    const char* outcome = "completed";
    char death[64];
    if (ep.end == EpisodeTrace::End::kSphereDeath) {
      std::snprintf(death, sizeof death, "sphere %d died", ep.dead_sphere);
      outcome = death;
    } else if (ep.end == EpisodeTrace::End::kAbandoned) {
      outcome = "abandoned";
    } else if (ep.end == EpisodeTrace::End::kAborted) {
      std::snprintf(death, sizeof death, "sphere %d died; job aborted",
                    ep.dead_sphere);
      outcome = death;
    } else if (ep.end == EpisodeTrace::End::kSdcRollback) {
      outcome = "SDC detected";
    }
    char progress[40];
    if (ep.end == EpisodeTrace::End::kCompleted) {
      std::snprintf(progress, sizeof progress, "it %ld->done",
                    ep.start_iteration);
    } else {
      std::snprintf(progress, sizeof progress, "it %ld->%ld",
                    ep.start_iteration, ep.snapshot_iteration);
    }
    std::snprintf(line, sizeof line,
                  "  #%-3d %9.1fs %+10.1fs  %-14s %2d ckpt  %2d deaths  %s",
                  ep.index, ep.start_wallclock, ep.elapsed, progress,
                  ep.checkpoints, ep.replica_deaths, outcome);
    out += line;
    // Unreliable-C/R annotations; absent in the reliable pipeline so the
    // rendered trace is unchanged at zero fault probabilities.
    if (ep.restart_attempts > 1) {
      std::snprintf(line, sizeof line, "  [%d restart attempts]",
                    ep.restart_attempts);
      out += line;
    }
    if (ep.fallback_depth > 0) {
      std::snprintf(line, sizeof line, "  [fell back %d generation%s]",
                    ep.fallback_depth, ep.fallback_depth == 1 ? "" : "s");
      out += line;
    }
    // Hierarchy annotations; absent with the flat single-device pipeline.
    if (ep.restore_level >= 0) {
      std::snprintf(line, sizeof line, "  [restored from level %d]",
                    ep.restore_level);
      out += line;
    }
    if (ep.flushes_lost > 0) {
      std::snprintf(line, sizeof line, "  [%d flush%s lost]", ep.flushes_lost,
                    ep.flushes_lost == 1 ? "" : "es");
      out += line;
    }
    if (ep.sdc_invalidated > 0) {
      std::snprintf(line, sizeof line, "  [%d ckpt%s invalidated]",
                    ep.sdc_invalidated, ep.sdc_invalidated == 1 ? "" : "s");
      out += line;
    }
    out += '\n';
  }
  return out;
}

}  // namespace redcr::runtime
