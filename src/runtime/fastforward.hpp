// Fast-forward execution: skip the inter-failure event churn, bit-identically.
//
// In the paper's bookkeeping failure mode, an injected death does not change
// a single simulated message — the injector only marks replicas dead and
// stops the engine when a sphere loses its last one. Every killed episode's
// event stream is therefore an exact time-shifted *prefix* of a
// failure-free run of the same configuration (the prototype): an episode
// resumed at iteration S executes hooks S..total-1, and its k-th hook lands
// at the prototype's k-th hook time. The fast-forward driver exploits this:
//
//  1. It samples each sphere's next death directly from the FaultProcess /
//     injector schedule, replaying the injector's event walk arithmetically
//     (the same delay and poll-granularity float operations, so the kill
//     instant is bit-identical);
//  2. it answers the walk's "in a checkpoint at t?" queries and
//     reconstructs the killed episode's full EpisodeResult — checkpoint
//     charges, StorageHierarchy interval routing and retention rotation,
//     async PFS flush launch/commit bookkeeping, generation commits with
//     their oracle draws, message/event/contention counters — from
//     observation tables (ckpt::FfProbe + stream logs) attached to one
//     lazily-advanced prototype episode per epoch-base congruence class;
//  3. it drops back to the full event engine for any episode the
//     reconstruction cannot cover: the final (completing) episode, any walk
//     query at or past the divergence boundary, and any timestamp tie
//     between an injector event and an application event.
//
// The contract is bit-identical JobReports, accounting invariants and obs
// counters versus ExecMode::kEvent for every supported configuration; the
// differential harness in tests/test_fastforward.cpp enforces it. Whole
// configurations the gate cannot prove safe (live semantics, SDC, attached
// recorder/journal, visible write failures, non-uniform workloads) run on
// the event engine unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/episode_rig.hpp"

namespace redcr::runtime {

class FastForwardDriver {
 public:
  /// `config`, `map` and `factory` must outlive the driver; the factory is
  /// used to build the prototypes' own workload instances so the job's are
  /// never disturbed.
  FastForwardDriver(const JobConfig& config, const red::ReplicaMap& map,
                    const WorkloadFactory& factory);
  ~FastForwardDriver();

  /// Can the whole job run fast-forward? False means the event engine runs
  /// every episode (the driver is not even built); `reason`, when non-null,
  /// receives a one-line explanation for the explicit-request warning.
  [[nodiscard]] static bool supported(
      const JobConfig& config,
      const std::vector<std::unique_ptr<apps::Workload>>& workloads,
      std::string* reason = nullptr);

  /// Attempts to cover one episode arithmetically. Returns the
  /// reconstructed result — including the generation commits into
  /// `store`/`hierarchy` the event engine would have made — or nullopt when
  /// the episode must replay on the event engine (it would complete, a walk
  /// query crossed the divergence boundary, a timestamp tie was detected,
  /// or the prototype is poisoned).
  std::optional<EpisodeResult> try_episode(long start_iteration,
                                           std::uint64_t episode_index,
                                           ckpt::CheckpointStore& store,
                                           ckpt::StorageHierarchy* hierarchy,
                                           int epoch_base,
                                           const failure::FaultProcess* faults,
                                           double useful_work_base);

 private:
  struct Prototype;
  Prototype& prototype_for(int klass, const failure::FaultProcess* faults);
  /// Advances the prototype so every event at time <= t has been processed;
  /// false = the prototype is poisoned (deadlock, exception, log overflow).
  bool ensure(Prototype& p, sim::Time t);

  const JobConfig& config_;
  const red::ReplicaMap& map_;
  const WorkloadFactory& factory_;
  /// Pure failure-schedule oracle (never spawned; draw_failure_times only).
  failure::FailureInjector schedule_;
  /// Hierarchy interval-routing period: prototypes are cached per
  /// epoch_base % period_ congruence class (1 = flat, a single class).
  int period_ = 1;
  std::vector<std::unique_ptr<Prototype>> prototypes_;
};

}  // namespace redcr::runtime
