// JobExecutor: runs a workload to completion under (partial) redundancy,
// coordinated checkpointing and Poisson failure injection — the simulated
// analogue of the paper's experimental campaign (Section 5).
//
// Execution is a sequence of *episodes*. Each episode builds a fresh
// simulation world (the restart relaunches every process), spawns one
// application process per *physical* rank behind a RedComm, arms the
// checkpoint timer and the failure injector, and runs until either every
// rank finishes the workload or a sphere (a virtual process with all
// replicas dead) dies. A sphere death charges the restart cost R and the
// next episode resumes from the last coordinated snapshot's iteration.
//
// Accounting invariant (tested): wallclock == useful_work + checkpoint_time
// + rework_time + restart_time, where useful work is work retained by the
// final state, and rework is work that was redone after failures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "apps/workload.hpp"
#include "ckpt/coordinator.hpp"
#include "ckpt/hierarchy.hpp"
#include "ckpt/store.hpp"
#include "failure/faults.hpp"
#include "failure/injector.hpp"
#include "failure/sdc.hpp"
#include "net/network.hpp"
#include "obs/journal.hpp"
#include "obs/recorder.hpp"
#include "red/red_comm.hpp"
#include "runtime/trace.hpp"

namespace redcr::runtime {

/// Which engine advances the job between failures.
enum class ExecMode {
  kEvent,        ///< full discrete-event simulation, the reference path
  kFastForward,  ///< sample deaths from the fault oracle and advance the
                 ///< inter-failure stretches arithmetically; falls back to
                 ///< the event engine per episode (and warns when the whole
                 ///< configuration is unsupported)
  kAuto,         ///< kFastForward when the configuration supports it,
                 ///< silently kEvent otherwise (per-event consumers such as
                 ///< trace/journal sinks force the event engine)
};

/// Which replication protocol carries the application's traffic.
enum class Replication {
  kPush,  ///< RedMPI-style: every sender replica pushes to every receiver
          ///< replica (the paper's library; supports voting and wildcards)
  kPull,  ///< VolpexMPI-style: receivers pull one copy from one live sender
          ///< replica (availability-oriented; no voting, no wildcards)
};

struct JobConfig {
  /// N: virtual processes.
  std::size_t num_virtual = 128;
  /// r: redundancy degree in [1, 8]; fractional values give partial
  /// redundancy per the paper's partition (Eqs. 5-8).
  double redundancy = 1.0;
  Replication replication = Replication::kPush;
  red::RedConfig red;
  net::NetworkParams network;
  ckpt::StorageParams storage;
  /// Per-process checkpoint image size (drives the emergent cost c).
  util::Bytes image_bytes = 256.0 * 1024 * 1024;
  /// δ: checkpoint interval. Must be > 0 when checkpointing is enabled;
  /// harnesses compute it from Daly's formula (Eq. 15).
  double checkpoint_interval = 0.0;
  bool checkpoint_enabled = true;
  bool use_counting_quiesce = true;
  /// Incremental checkpointing: fraction of the image written after each
  /// episode's first full checkpoint (1.0 = always full, the paper's setup).
  double ckpt_incremental_fraction = 1.0;
  /// Forked checkpointing: image writes drain in the background.
  bool ckpt_forked = false;
  /// R: dead time charged per restart, seconds.
  double restart_cost = 500.0;
  failure::FailureParams fail;
  bool inject_failures = true;
  // --- Unreliable C/R (defaults reproduce the reliable pipeline) ----------
  /// Checkpoint-pipeline fault probabilities (write failure, latent image
  /// corruption, restart failure). All zero by default.
  failure::CkptFaultParams ckpt_faults;
  /// Checkpoint generations retained for fallback (SCR-style). 1 = newest
  /// only, the original behavior.
  int ckpt_retention = 1;
  /// Retry/backoff for visibly failed image writes (blocking mode).
  failure::RetryPolicy ckpt_write_retry;
  /// Multi-level storage hierarchy (empty = the flat single-device
  /// pipeline, bit-identical to before the hierarchy existed). When
  /// enabled, `storage` and `ckpt_retention` are ignored for checkpoint
  /// images — each level carries its own device and retention — and
  /// `ckpt_forked` must be off (async flush is the hierarchy's overlapped
  /// drain). Restores fetch from the cheapest level that survived the
  /// failure's dead set.
  ckpt::HierarchyParams hierarchy;
  /// Silent-data-corruption fault model (in-flight copy flips + at-rest
  /// rank infections, drawn from the seeded oracle). Disabled by default.
  /// Requires Replication::kPush — detection *is* the push protocol's
  /// replica voting, which the pull protocol does not perform. A dual
  /// sphere detects (uncorrectable mismatch → rollback to the last
  /// *verified* checkpoint), a triple sphere corrects and keeps going, an
  /// unreplicated sphere lets the infection pass silently.
  failure::SdcParams sdc;
  /// Retry/backoff for failed restart phases. Every attempt — including
  /// the first — charges restart_cost; retries additionally pay the
  /// backoff. Exhausting it ends the job in a JobAbort.
  failure::RetryPolicy restart_retry;
  /// Live failure semantics (rMPI-style degradation): survivors stop
  /// exchanging with dead replicas and dead replicas freeze, instead of the
  /// paper's bookkeeping-only injection. Requires checkpoint_enabled ==
  /// false (a frozen rank cannot join the collective quiesce); restart
  /// after a sphere death then replays from iteration 0.
  bool live_failure_semantics = false;
  /// Execution engine. kFastForward/kAuto reconstruct each killed episode's
  /// result arithmetically from a cached failure-free prototype run and the
  /// fault oracle, with a per-episode fall-back to the event engine whenever
  /// message-level semantics could matter. The contract is bit-identical
  /// JobReports and obs counters versus kEvent for every configuration.
  ExecMode engine = ExecMode::kEvent;
  /// Safety valve: give up after this many episodes (reported as
  /// !completed). A job whose MTBF is far below its checkpoint cost can
  /// otherwise livelock, which is exactly Eq. 14's λ·t_RR ≥ 1 regime.
  int max_episodes = 10000;
  /// Optional observability sink (not owned; must outlive the executor).
  /// When set, the whole stack records into it: phase-time counters that
  /// reproduce the accounting invariant, per-rank checkpoint spans, failure
  /// instants, and traffic/engine counters. All timestamps are simulated
  /// job time, so the recorded output is a pure function of the config.
  obs::Recorder* recorder = nullptr;
  /// Optional causal event journal (not owned; must outlive the executor).
  /// When set, every causally meaningful event — replica/sphere deaths,
  /// per-level checkpoint commits, flush launches/losses, restart attempts,
  /// fetches, restores, rework, aborts — is appended with a stable event id,
  /// and every waste event carries the id of the root sphere-death as its
  /// `cause`, so obs::blame() can bill each second of rework/restart/flush
  /// loss to exactly one fault. Null = off: every instrumentation site is a
  /// single branch and runs stay byte-identical to a journal-free build.
  obs::Journal* journal = nullptr;
};

/// Structured end-of-job outcome when the unreliable C/R pipeline gives up:
/// the job did not complete and *cannot make progress* — either the restart
/// phase kept failing, or no retained checkpoint generation validated.
struct JobAbort {
  enum class Reason {
    kRestartRetriesExhausted,  ///< every restart attempt failed
    kNoValidCheckpoint,        ///< all retained generations failed validation
  };
  Reason reason = Reason::kRestartRetriesExhausted;
  /// Job wallclock at which the abort was declared, seconds.
  double time = 0.0;
  /// Episode whose failure triggered the abort.
  int episode = 0;
  /// Restart attempts paid for the fatal failure.
  int restart_attempts = 0;
  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;
};

struct JobReport {
  bool completed = false;
  /// Set when the job ended in a structured abort (implies !completed).
  std::optional<JobAbort> abort;
  /// Total wallclock including all restarts, seconds.
  double wallclock = 0.0;
  double useful_work = 0.0;
  double checkpoint_time = 0.0;
  double rework_time = 0.0;
  double restart_time = 0.0;
  int episodes = 0;
  int job_failures = 0;        ///< sphere deaths (= restarts)
  int physical_failures = 0;   ///< replica deaths incl. harmless ones
  int checkpoints = 0;
  std::uint64_t messages = 0;  ///< physical messages injected
  std::uint64_t engine_events = 0;
  std::size_t num_physical = 0;
  double network_contention_wait = 0.0;
  std::uint64_t red_mismatches_detected = 0;
  std::uint64_t red_mismatches_corrected = 0;
  /// Voted deliveries compared across replicas (previously recorded per
  /// comm but silently dropped from the report).
  std::uint64_t red_messages_compared = 0;
  /// Deliveries that surfaced a tainted payload with no observable
  /// divergence (r=1 spheres, or a consistently infected copy set).
  std::uint64_t red_mismatches_undetected = 0;
  // --- Unreliable C/R (all zero under the reliable pipeline) --------------
  int restart_attempts = 0;    ///< restart attempts paid (>= job_failures)
  int failed_restarts = 0;     ///< restart attempts that failed
  int failed_checkpoints = 0;  ///< epochs abandoned after write retries
  int fallback_restores = 0;   ///< restores that fell back past the newest
  std::uint64_t ckpt_write_failures = 0;  ///< image-write attempts that failed
  double wasted_write_time = 0.0;  ///< device seconds burned by failed writes
  // --- Storage hierarchy (all zero/empty when the hierarchy is off) -------
  /// Terminal async-flush drain wallclock: time spent waiting, after the
  /// workload finished, for in-flight PFS drains to land. The accounting
  /// invariant becomes wallclock == useful + checkpoint + rework + restart
  /// + flush.
  double flush_time = 0.0;
  /// Restore-time fetch seconds (read cost at the serving level); a subset
  /// of restart_time, broken out for the cache-vs-PFS cost studies.
  double fetch_time = 0.0;
  int flushes_completed = 0;  ///< async PFS drains that landed
  int flushes_lost = 0;       ///< async PFS drains destroyed by a kill
  /// Per-storage-level lifetime counters (one entry per hierarchy level).
  struct LevelReport {
    std::string kind;                 ///< "local", "partner", "xor", "pfs"
    std::uint64_t writes = 0;         ///< successful device writes
    std::uint64_t write_failures = 0; ///< visibly failed write attempts
    std::uint64_t commits = 0;        ///< generations committed
    std::uint64_t fetches = 0;        ///< restores served by this level
    std::uint64_t defeated = 0;       ///< restores that found it destroyed
  };
  std::vector<LevelReport> levels;
  // --- Silent data corruption (all zero when the SDC model is off) --------
  /// Episodes ended by an uncorrectable divergence (each pays a restart and
  /// rolls back to the newest *verified* checkpoint).
  int sdc_rollbacks = 0;
  std::uint64_t sdc_injected = 0;    ///< injections (in-flight + at-rest)
  std::uint64_t sdc_corrected = 0;   ///< deliveries where voting outvoted a strain
  std::uint64_t sdc_undetected = 0;  ///< tainted deliveries that passed voting
  /// Unverified checkpoint generations invalidated at detection time.
  int sdc_invalidated_ckpts = 0;
  /// Summed injection→detection latency across the job's rollbacks.
  double sdc_detection_latency = 0.0;
  /// Rework seconds billed to SDC rollbacks (a subset of rework_time; the
  /// accounting invariant is untouched — SDC waste tiles into rework).
  double sdc_rework = 0.0;
  /// Physical ranks still carrying an undetected infection when the job
  /// completed (> 0 = the result is silently corrupt — the r=1 story).
  std::uint64_t sdc_infected_final = 0;
  /// Per-episode timeline (render with runtime::render_trace).
  std::vector<EpisodeTrace> trace;
  // --- Fast-forward engine diagnostics ------------------------------------
  /// How the fast-forward engine covered the job. These fields are the ONE
  /// exception to the bit-identity contract: they describe the engine, not
  /// the simulated job, and stay all-zero under ExecMode::kEvent (the
  /// differential harness compares everything but this block).
  struct FastForwardStats {
    int episodes_fast = 0;    ///< episodes reconstructed arithmetically
    int fallbacks = 0;        ///< episodes replayed on the event engine
                              ///< (plus 1 when the whole config fell back)
    std::uint64_t epochs_skipped = 0;  ///< checkpoint epochs advanced in
                                       ///< closed form instead of simulated
    std::uint64_t replay_events = 0;   ///< engine events actually processed
                                       ///< inside fallback episodes
  };
  FastForwardStats ff;
};

/// Everything one episode hands back to the job loop. Produced either by the
/// event engine (EpisodeRig) or reconstructed arithmetically by the
/// fast-forward driver — bit-identically, field by field.
struct EpisodeResult {
  bool finished = false;                       // workload ran to completion
  sim::Time elapsed = 0.0;                     // episode wallclock
  double checkpoint_time = 0.0;                // incl. partial at kill
  ckpt::Snapshot snapshot;                     // last durable snapshot
  std::optional<failure::JobFailure> failure;  // set when a sphere died
  int checkpoints = 0;
  int failed_checkpoints = 0;                  // write-exhausted epochs
  std::uint64_t write_failures = 0;
  double wasted_write_time = 0.0;
  std::size_t physical_failures = 0;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  double contention_wait = 0.0;
  std::uint64_t mismatches_detected = 0;
  std::uint64_t mismatches_corrected = 0;
  std::uint64_t messages_compared = 0;
  std::uint64_t mismatches_undetected = 0;
  // --- Silent data corruption ---------------------------------------------
  /// The uncorrectable detection that stopped the episode, if one fired.
  std::optional<failure::SdcDetection> sdc;
  failure::SdcStats sdc_stats;
  /// Ranks still infected when the episode ended (silent infections).
  std::uint64_t sdc_infected_end = 0;
  // --- Storage hierarchy --------------------------------------------------
  std::vector<char> dead_ranks;       // per physical rank at episode end
  double flush_drain = 0.0;           // terminal drain beyond the finish
  int flushes_completed = 0;
  int flushes_lost = 0;
  std::vector<std::uint64_t> level_writes;          // per level
  std::vector<std::uint64_t> level_write_failures;  // per level
};

/// Creates the per-physical-rank workload instance. Called once per physical
/// rank before the first episode; instances persist across episodes (they
/// carry the application's checkpointed state). Arguments: virtual rank,
/// virtual world size.
using WorkloadFactory =
    std::function<std::unique_ptr<apps::Workload>(int virtual_rank,
                                                  int num_virtual)>;

class JobExecutor {
 public:
  JobExecutor(JobConfig config, WorkloadFactory factory);

  /// Runs the job to completion (or max_episodes) and returns the report.
  JobReport run();

  /// Convenience: measures the failure-free, checkpoint-free execution time
  /// (the paper's Table-5 quantity t_Red as observed).
  static JobReport run_failure_free(JobConfig config, WorkloadFactory factory);

  [[nodiscard]] const red::ReplicaMap& replica_map() const noexcept {
    return map_;
  }

 private:
  EpisodeResult run_episode(long start_iteration, std::uint64_t episode_index,
                            ckpt::CheckpointStore& store,
                            ckpt::StorageHierarchy* hierarchy, int epoch_base,
                            const failure::FaultProcess* faults,
                            double useful_work_base,
                            const std::vector<failure::InfectionRecord>&
                                seed_infections);

  JobConfig config_;
  red::ReplicaMap map_;
  /// Kept (not just consumed) so the fast-forward driver can build its own
  /// prototype workload instances without disturbing the job's.
  WorkloadFactory factory_;
  std::vector<std::unique_ptr<apps::Workload>> workloads_;  // per physical
};

}  // namespace redcr::runtime
