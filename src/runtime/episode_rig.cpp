#include "runtime/episode_rig.hpp"

#include <cassert>
#include <stdexcept>

#include "red/pull_comm.hpp"
#include "simmpi/world.hpp"

namespace redcr::runtime {

void EpisodeShared::check_completion(sim::Engine& engine) {
  if (completed) return;
  for (std::size_t p = 0; p < finished.size(); ++p) {
    const bool dead =
        monitor != nullptr && monitor->is_dead(static_cast<red::Rank>(p));
    if (!finished[p] && !dead) return;
  }
  completed = true;
  finish_time = engine.now();
  engine.request_stop();
}

namespace {

/// Top-level simulated process for one physical rank: runs the workload
/// behind its RedComm, hooking the checkpoint controller at every boundary.
sim::Task rank_main(sim::Engine& engine, apps::Workload& workload,
                    simmpi::Comm& comm, simmpi::Endpoint& endpoint,
                    ckpt::CheckpointController& controller,
                    long start_iteration, EpisodeShared& shared) {
  apps::BoundaryHook hook = [&controller, &endpoint](long iteration) {
    return controller.maybe_checkpoint(endpoint, iteration);
  };
  co_await workload.run(comm, start_iteration, std::move(hook));
  shared.finished[static_cast<std::size_t>(endpoint.rank())] = true;
  shared.check_completion(engine);
}

}  // namespace

EpisodeRig::EpisodeRig(const JobConfig& config, const red::ReplicaMap& map,
                       std::vector<std::unique_ptr<apps::Workload>>& workloads,
                       ckpt::CheckpointStore& store,
                       ckpt::StorageHierarchy* hierarchy,
                       const failure::FaultProcess* faults,
                       const std::vector<failure::InfectionRecord>&
                           seed_infections,
                       Options opts)
    : config_(config),
      map_(map),
      workloads_(&workloads),
      hierarchy_(hierarchy),
      opts_(opts),
      engine_(),
      network_(engine_, map_.num_physical(), config_.network),
      world_(engine_, network_, static_cast<int>(map_.num_physical())),
      storage_(engine_, config_.storage),
      monitor_(map_),
      injector_(map_, config_.fail),
      shared_(map_.num_physical()) {
  engine_.set_recorder(opts_.recorder);
  network_.set_recorder(opts_.recorder);
  storage_.set_fault_process(faults);

  // Hierarchy mode: one episode-scope device per level. The controller
  // draws each level's write failures itself (each level has its own
  // probability), so no fault process is attached to these devices.
  if (hierarchy_ != nullptr) {
    level_devices_.reserve(static_cast<std::size_t>(hierarchy_->num_levels()));
    for (int l = 0; l < hierarchy_->num_levels(); ++l) {
      level_devices_.push_back(std::make_unique<ckpt::StableStorage>(
          engine_, hierarchy_->level(l).params.device));
      level_device_ptrs_.push_back(level_devices_.back().get());
    }
  }

  // SDC fault model: one monitor per episode tracks rank infections and
  // classifies every voted delivery; an uncorrectable divergence stops the
  // episode (the executor then rolls back to the last verified checkpoint).
  if (config_.sdc.enabled()) {
    assert(faults != nullptr);
    sdc_monitor_.emplace(map_, *faults, opts_.episode_index);
    sdc_monitor_->set_recorder(opts_.recorder);
    sdc_monitor_->set_journal(opts_.journal);
    sdc_monitor_->seed(seed_infections);
  }

  ckpt::CkptConfig ckpt_config;
  ckpt_config.interval =
      config_.checkpoint_enabled ? config_.checkpoint_interval : 1.0;
  ckpt_config.image_bytes = config_.image_bytes;
  ckpt_config.use_counting_quiesce = config_.use_counting_quiesce;
  ckpt_config.enabled = config_.checkpoint_enabled;
  ckpt_config.incremental_fraction = config_.ckpt_incremental_fraction;
  ckpt_config.forked = config_.ckpt_forked;
  ckpt_config.faults = faults;
  ckpt_config.write_retry = config_.ckpt_write_retry;
  ckpt_config.store = hierarchy_ != nullptr ? nullptr : &store;
  ckpt_config.episode = opts_.episode_index;
  ckpt_config.useful_work_base = opts_.useful_work_base;
  ckpt_config.hierarchy = hierarchy_;
  ckpt_config.level_devices = level_device_ptrs_;
  ckpt_config.epoch_base = opts_.epoch_base;
  ckpt_config.sdc = sdc_monitor_ ? &*sdc_monitor_ : nullptr;
  controller_.emplace(engine_, storage_, ckpt_config,
                      static_cast<int>(map_.num_physical()));
  controller_->set_recorder(opts_.recorder);
  controller_->set_journal(opts_.journal);

  injector_.set_recorder(opts_.recorder);
  injector_.set_journal(opts_.journal);

  comms_.reserve(map_.num_physical());
  for (std::size_t p = 0; p < map_.num_physical(); ++p) {
    if (config_.replication == Replication::kPush) {
      auto comm = std::make_unique<red::RedComm>(
          world_, map_, static_cast<red::Rank>(p), config_.red);
      if (config_.live_failure_semantics) comm->set_liveness(&monitor_);
      if (sdc_monitor_) comm->set_sdc(&*sdc_monitor_);
      comm->set_recorder(opts_.recorder);
      comms_.push_back(std::move(comm));
    } else {
      auto comm = std::make_unique<red::PullComm>(
          world_, map_, static_cast<red::Rank>(p));
      if (config_.live_failure_semantics) comm->set_liveness(&monitor_);
      comm->set_recorder(opts_.recorder);
      comms_.push_back(std::move(comm));
    }
  }

  if (config_.live_failure_semantics) shared_.monitor = &monitor_;
}

void EpisodeRig::set_compared_log(std::vector<sim::Time>* log) {
  for (auto& comm : comms_) {
    if (auto* push = dynamic_cast<red::RedComm*>(comm.get()))
      push->set_compared_log(log);
  }
}

void EpisodeRig::start() {
  if (started_)
    throw std::logic_error("EpisodeRig::start called twice");
  started_ = true;

  for (std::size_t p = 0; p < map_.num_physical(); ++p) {
    engine_.spawn(rank_main(engine_, *(*workloads_)[p], *comms_[p],
                            world_.endpoint(static_cast<red::Rank>(p)),
                            *controller_, opts_.start_iteration, shared_));
  }
  controller_->arm();

  if (sdc_monitor_) {
    // The first uncorrectable divergence ends the episode: there is no
    // point running on — the infected state must be rolled back.
    sdc_monitor_->set_alarm(
        [this](const failure::SdcDetection&) { engine_.request_stop(); });
    if (config_.sdc.atrest_rate > 0.0)
      engine_.spawn(sdc_monitor_->run(engine_));
  }

  if (opts_.inject) {
    std::function<void(red::Rank)> on_replica_death;
    if (config_.live_failure_semantics) {
      // Abort every pending receive from the corpse so survivors degrade
      // instead of hanging, then re-check completion (the corpse may have
      // been the last unfinished rank).
      on_replica_death = [this](red::Rank dead) {
        for (int p = 0; p < world_.size(); ++p)
          world_.endpoint(p).abort_posted_from(dead);
        shared_.check_completion(engine_);
      };
    }
    engine_.spawn(injector_.run(
        engine_, monitor_, opts_.episode_index,
        [this] { return controller_->in_checkpoint(); },
        [this](failure::JobFailure jf) {
          job_failure_ = jf;
          engine_.request_stop();
        },
        std::move(on_replica_death)));
  }
}

EpisodeResult EpisodeRig::collect() {
  EpisodeResult result;
  if (sdc_monitor_) {
    result.sdc = sdc_monitor_->detection();
    result.sdc_stats = sdc_monitor_->stats();
    result.sdc_infected_end = sdc_monitor_->snapshot_infections().size();
  }
  result.finished = shared_.completed && !job_failure_ && !result.sdc;
  result.failure = job_failure_;
  if (!result.finished && !job_failure_ && !result.sdc)
    throw std::logic_error(
        "JobExecutor: episode stalled — simulation deadlock");
  result.elapsed = job_failure_  ? job_failure_->time
                   : result.sdc ? result.sdc->time
                                : shared_.finish_time;
  result.checkpoint_time = controller_->total_checkpoint_time() +
                           controller_->in_progress_elapsed(result.elapsed);
  // A kill mid-checkpoint is charged to checkpoint_time; record the
  // truncated span too so the "checkpoint" spans tile the counter exactly.
  if (opts_.recorder != nullptr) {
    const double partial = controller_->in_progress_elapsed(result.elapsed);
    if (partial > 0.0)
      opts_.recorder->span("checkpoint", "ckpt", obs::kJobPid,
                           result.elapsed - partial, result.elapsed);
  }
  if (hierarchy_ != nullptr) {
    // Settle the async flushes: commits the engine stop may have raced,
    // then either drain the rest (finished episode — the terminal wait is
    // the job's `flush` wallclock component) or drop them (a kill destroys
    // in-flight drains).
    controller_->commit_ready_flushes(result.elapsed);
    if (result.finished) {
      result.flush_drain =
          controller_->drain_remaining_flushes(result.elapsed);
      if (result.flush_drain > 0.0 && opts_.recorder != nullptr)
        opts_.recorder->span("flush-drain", "ckpt", obs::kJobPid,
                             result.elapsed,
                             result.elapsed + result.flush_drain);
      result.elapsed += result.flush_drain;
    } else {
      // Bill every destroyed in-flight drain to the killing failure (or to
      // the injection whose detection forced the rollback: the relaunch
      // abandons the drain, and the flushed images were suspect anyway).
      controller_->drop_remaining_flushes(
          job_failure_  ? job_failure_->cause
          : result.sdc ? result.sdc->injection_event
                       : 0);
    }
    result.flushes_completed = controller_->flushes_completed();
    result.flushes_lost = controller_->flushes_lost();
    result.dead_ranks.assign(map_.num_physical(), 0);
    for (std::size_t p = 0; p < map_.num_physical(); ++p) {
      if (monitor_.is_dead(static_cast<red::Rank>(p)))
        result.dead_ranks[p] = 1;
    }
    result.level_writes.reserve(level_devices_.size());
    result.level_write_failures.reserve(level_devices_.size());
    for (const auto& dev : level_devices_) {
      result.level_writes.push_back(dev->writes());
      result.level_write_failures.push_back(dev->failed_writes());
    }
  }
  result.snapshot = controller_->snapshot();
  result.checkpoints = controller_->checkpoints_completed();
  result.failed_checkpoints = controller_->failed_epochs();
  result.write_failures = controller_->write_failures();
  result.wasted_write_time = storage_.wasted_write_seconds();
  for (const auto& dev : level_devices_)
    result.wasted_write_time += dev->wasted_write_seconds();
  result.physical_failures = monitor_.dead_processes();
  result.messages = world_.stats().messages_sent;
  result.events = engine_.events_processed();
  result.contention_wait = network_.stats().contention_wait;
  for (const auto& comm : comms_) {
    if (const auto* push = dynamic_cast<const red::RedComm*>(comm.get())) {
      result.mismatches_detected += push->stats().mismatches_detected;
      result.mismatches_corrected += push->stats().mismatches_corrected;
      result.messages_compared += push->stats().messages_compared;
      result.mismatches_undetected += push->stats().mismatches_undetected;
    }
  }
  return result;
}

}  // namespace redcr::runtime
