#include "model/breakdown.hpp"

#include <cmath>

namespace redcr::model {

TimeBreakdown compute_breakdown(const CombinedConfig& config, double r) {
  const Prediction p = predict(config, r);
  TimeBreakdown b;
  b.total_time = p.total_time;
  b.expected_failures = p.expected_failures;
  if (!std::isfinite(p.total_time) || p.total_time <= 0.0) {
    // Degenerate regime: all time is repair; report the asymptotic split.
    b.restart = 1.0;
    return b;
  }
  const double work_time = p.redundant_time;
  const double checkpoint_time =
      p.redundant_time * config.machine.checkpoint_cost / p.interval;
  const double rr_total = p.expected_failures * p.restart_rework;
  // Split each combined restart+rework phase proportionally to its two
  // ingredients (Eq. 13 folds R and t_lw into one expected duration).
  const double ingredients = config.machine.restart_cost + p.lost_work;
  const double restart_share =
      ingredients > 0.0 ? config.machine.restart_cost / ingredients : 1.0;
  b.work = work_time / p.total_time;
  b.checkpoint = checkpoint_time / p.total_time;
  b.restart = rr_total * restart_share / p.total_time;
  b.recompute = rr_total * (1.0 - restart_share) / p.total_time;
  return b;
}

}  // namespace redcr::model
