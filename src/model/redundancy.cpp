#include "model/redundancy.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>

namespace redcr::model {

double redundant_time(const AppParams& app, double r) noexcept {
  assert(r >= 1.0);
  assert(app.comm_fraction >= 0.0 && app.comm_fraction <= 1.0);
  const double alpha = app.comm_fraction;
  return (1.0 - alpha) * app.base_time + alpha * app.base_time * r;
}

Partition partition_processes(std::size_t n, double r) {
  assert(n >= 1);
  assert(r >= 1.0);
  Partition p;
  p.floor_degree = static_cast<unsigned>(std::floor(r));
  p.ceil_degree = static_cast<unsigned>(std::ceil(r));
  // Eq. 6: N_⌊r⌋ = ⌊(⌈r⌉ - r)·N⌋. For integer r, ⌈r⌉ - r = 0, so the floor
  // set is empty and the system is homogeneous at degree r.
  p.n_floor_set = static_cast<std::size_t>(
      std::floor((static_cast<double>(p.ceil_degree) - r) *
                 static_cast<double>(n)));
  p.n_floor_set = std::min(p.n_floor_set, n);
  p.n_ceil_set = n - p.n_floor_set;  // Eq. 7
  // Eq. 8.
  p.total_procs =
      p.n_ceil_set * p.ceil_degree + p.n_floor_set * p.floor_degree;
  return p;
}

double node_failure_probability(double t, double node_mtbf,
                                NodeFailureModel model) noexcept {
  assert(t >= 0.0);
  assert(node_mtbf > 0.0);
  switch (model) {
    case NodeFailureModel::kLinearized:
      // Eq. 3, first-order in t/θ; clamp keeps Eq. 9 meaningful when the
      // approximation is pushed outside its validity range.
      return std::clamp(t / node_mtbf, 0.0, 1.0);
    case NodeFailureModel::kExactExponential:
      return 1.0 - std::exp(-t / node_mtbf);  // Eq. 2
  }
  return 1.0;
}

double log_sphere_survival(double pf, unsigned degree) noexcept {
  // Eq. 4 per sphere: a degree-k sphere fails only if all k replicas fail.
  const double sphere = 1.0 - std::pow(pf, degree);
  if (sphere <= 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(sphere);
}

double SphereTermCache::warm(double pf, unsigned degree) {
  if (degree > kMaxDegree) return log_sphere_survival(pf, degree);
  Terms& terms = terms_[std::bit_cast<std::uint64_t>(pf)];
  const std::uint32_t bit = std::uint32_t{1} << degree;
  if ((terms.computed_mask & bit) == 0) {
    terms.value[degree] = log_sphere_survival(pf, degree);
    terms.computed_mask |= bit;
  }
  return terms.value[degree];
}

double SphereTermCache::lookup(double pf, unsigned degree) const noexcept {
  if (degree <= kMaxDegree) {
    const Terms* terms = terms_.find(std::bit_cast<std::uint64_t>(pf));
    if (terms != nullptr &&
        (terms->computed_mask & (std::uint32_t{1} << degree)) != 0)
      return terms->value[degree];
  }
  return log_sphere_survival(pf, degree);
}

double log_system_reliability(std::size_t n, double r, double t,
                              double node_mtbf, NodeFailureModel model,
                              const SphereTermCache* cache) {
  const Partition p = partition_processes(n, r);
  const double pf = node_failure_probability(t, node_mtbf, model);
  const auto term = [&](unsigned degree) {
    return cache != nullptr ? cache->lookup(pf, degree)
                            : log_sphere_survival(pf, degree);
  };
  // Eq. 9 across spheres: all N_⌊r⌋ + N_⌈r⌉ spheres must survive.
  double log_r = 0.0;
  if (p.n_floor_set > 0) {
    const double sphere_term = term(p.floor_degree);
    if (std::isinf(sphere_term))
      return -std::numeric_limits<double>::infinity();
    log_r += static_cast<double>(p.n_floor_set) * sphere_term;
  }
  if (p.n_ceil_set > 0) {
    const double sphere_term = term(p.ceil_degree);
    if (std::isinf(sphere_term))
      return -std::numeric_limits<double>::infinity();
    log_r += static_cast<double>(p.n_ceil_set) * sphere_term;
  }
  return log_r;
}

double system_reliability(std::size_t n, double r, double t, double node_mtbf,
                          NodeFailureModel model) {
  return std::exp(log_system_reliability(n, r, t, node_mtbf, model));
}

SystemFailure system_failure(const AppParams& app, const MachineParams& machine,
                             double r, NodeFailureModel model,
                             const SphereTermCache* cache) {
  SystemFailure sf;
  const double t_red = redundant_time(app, r);
  const double log_r = log_system_reliability(app.num_procs, r, t_red,
                                              machine.node_mtbf, model, cache);
  sf.reliability = std::exp(log_r);  // may underflow to 0; λ does not care
  if (!std::isfinite(log_r)) {
    // Certain failure within t_Red: rate is effectively unbounded.
    sf.failure_rate = std::numeric_limits<double>::infinity();
    sf.mtbf = 0.0;
    return sf;
  }
  // Eq. 10, computed in log space to survive R_sys underflow.
  sf.failure_rate = -log_r / t_red;
  sf.mtbf = sf.failure_rate == 0.0
                ? std::numeric_limits<double>::infinity()
                : 1.0 / sf.failure_rate;
  return sf;
}

double birthday_collision_probability(double n) noexcept {
  // Verbatim Section 4.3: p(n) ≈ 1 - ((n-2)/n)^{n(n-1)/2}. As n → ∞ the
  // base (1 - 2/n) raised to ~n²/2 behaves like e^{-(n-1)} → 0, so the
  // printed expression tends to 1 (the paper states the limit as 0; the
  // intended vanishing quantity is shadow_hit_probability below). We
  // evaluate in log space to avoid pow() underflow at large n.
  if (n <= 2.0) return 1.0;
  const double exponent = n * (n - 1.0) / 2.0;
  const double log_term = exponent * std::log((n - 2.0) / n);
  return 1.0 - std::exp(log_term);
}

double shadow_hit_probability(double n) noexcept {
  return n <= 1.0 ? 1.0 : 1.0 / (n - 1.0);
}

}  // namespace redcr::model
