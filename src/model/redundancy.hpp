// Redundancy-side model: Eqs. 1, 5-10 of the paper plus the birthday-problem
// approximation from Section 4.3.
#pragma once

#include <cstddef>

#include "model/params.hpp"

namespace redcr::model {

/// Eq. 1: execution time dilated by redundant communication,
/// t_Red = (1-α)t + α t r. Defined for any real r ≥ 1.
[[nodiscard]] double redundant_time(const AppParams& app, double r) noexcept;

/// Result of partitioning N virtual processes for partial redundancy
/// (Eqs. 5-8). With fractional r, N splits into a set replicated ⌊r⌋ times
/// and a set replicated ⌈r⌉ times.
struct Partition {
  std::size_t n_floor_set = 0;   ///< N_⌊r⌋: processes at degree ⌊r⌋
  std::size_t n_ceil_set = 0;    ///< N_⌈r⌉: processes at degree ⌈r⌉
  unsigned floor_degree = 1;     ///< ⌊r⌋
  unsigned ceil_degree = 1;      ///< ⌈r⌉
  std::size_t total_procs = 0;   ///< Eq. 8: N_⌈r⌉·⌈r⌉ + N_⌊r⌋·⌊r⌋
};

/// Eqs. 5-8. Requires n ≥ 1 and r ≥ 1. Integer r yields a homogeneous
/// partition (n_floor_set == 0).
[[nodiscard]] Partition partition_processes(std::size_t n, double r);

/// Probability that a single node fails within interval `t` (Eq. 2 or 3
/// depending on `model`), clamped to [0, 1].
[[nodiscard]] double node_failure_probability(double t, double node_mtbf,
                                              NodeFailureModel model) noexcept;

/// Eq. 9: probability that every virtual process (sphere) survives the
/// interval `t` under partial redundancy degree r.
[[nodiscard]] double system_reliability(std::size_t n, double r, double t,
                                        double node_mtbf,
                                        NodeFailureModel model);

/// ln of Eq. 9. R_sys underflows double precision already for modest N·t/θ
/// (e.g. 10^5 nodes over 700 h is e^-1612), but the failure rate only needs
/// the logarithm, so Eq. 10 is computed from this. Returns -infinity when
/// some sphere fails with certainty within t.
[[nodiscard]] double log_system_reliability(std::size_t n, double r, double t,
                                            double node_mtbf,
                                            NodeFailureModel model);

/// Failure characterization of the whole (partially) redundant system over
/// the redundancy-dilated run time (Eq. 10).
struct SystemFailure {
  double reliability = 1.0;    ///< R_sys over t_Red
  double failure_rate = 0.0;   ///< λ_sys = -ln(R_sys)/t_Red
  double mtbf = 0.0;           ///< Θ_sys = 1/λ_sys (infinity if λ_sys == 0)
};

/// Full redundancy-side pipeline: Eq. 1 then Eqs. 9-10 evaluated over t_Red.
[[nodiscard]] SystemFailure system_failure(const AppParams& app,
                                           const MachineParams& machine,
                                           double r, NodeFailureModel model);

/// Section 4.3's "birthday problem" approximation as printed in the paper:
/// p(n) ≈ 1 - ((n-2)/n)^{n(n-1)/2}. (Note: as printed this tends to 1, not
/// the claimed 0 — see the implementation comment; we reproduce the formula
/// verbatim and also expose the per-failure shadow-hit probability below,
/// which does vanish with n and carries the paper's intended argument.)
[[nodiscard]] double birthday_collision_probability(double n) noexcept;

/// Probability that the *next* node failure hits the one shadow of an
/// already-failed primary among the n-1 survivors: 1/(n-1). This is the
/// quantity that "becomes less likely as the number of nodes increases"
/// (Section 1's birthday-problem discussion).
[[nodiscard]] double shadow_hit_probability(double n) noexcept;

}  // namespace redcr::model
