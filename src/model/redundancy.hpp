// Redundancy-side model: Eqs. 1, 5-10 of the paper plus the birthday-problem
// approximation from Section 4.3.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "model/params.hpp"
#include "util/flat_map.hpp"

namespace redcr::model {

/// Eq. 1: execution time dilated by redundant communication,
/// t_Red = (1-α)t + α t r. Defined for any real r ≥ 1.
[[nodiscard]] double redundant_time(const AppParams& app, double r) noexcept;

/// Result of partitioning N virtual processes for partial redundancy
/// (Eqs. 5-8). With fractional r, N splits into a set replicated ⌊r⌋ times
/// and a set replicated ⌈r⌉ times.
struct Partition {
  std::size_t n_floor_set = 0;   ///< N_⌊r⌋: processes at degree ⌊r⌋
  std::size_t n_ceil_set = 0;    ///< N_⌈r⌉: processes at degree ⌈r⌉
  unsigned floor_degree = 1;     ///< ⌊r⌋
  unsigned ceil_degree = 1;      ///< ⌈r⌉
  std::size_t total_procs = 0;   ///< Eq. 8: N_⌈r⌉·⌈r⌉ + N_⌊r⌋·⌊r⌋
};

/// Eqs. 5-8. Requires n ≥ 1 and r ≥ 1. Integer r yields a homogeneous
/// partition (n_floor_set == 0).
[[nodiscard]] Partition partition_processes(std::size_t n, double r);

/// Probability that a single node fails within interval `t` (Eq. 2 or 3
/// depending on `model`), clamped to [0, 1].
[[nodiscard]] double node_failure_probability(double t, double node_mtbf,
                                              NodeFailureModel model) noexcept;

/// Eq. 9: probability that every virtual process (sphere) survives the
/// interval `t` under partial redundancy degree r.
[[nodiscard]] double system_reliability(std::size_t n, double r, double t,
                                        double node_mtbf,
                                        NodeFailureModel model);

/// The per-sphere log-survival term of Eq. 9: ln(1 - pf^degree), or
/// -infinity when the sphere fails with certainty. The one expression both
/// the scalar and the memoized evaluation paths share, so cached and
/// uncached results are bitwise identical.
[[nodiscard]] double log_sphere_survival(double pf, unsigned degree) noexcept;

/// Memoization table for the Eq. 9 sphere terms ln(1 - pf^degree) — the
/// pow/log pair that dominates every sweep point. Keyed by the exact bit
/// pattern of pf (so distinct inputs never alias) with one slot per degree
/// up to kMaxDegree; rarer higher degrees fall through to direct
/// computation. Warm the cache serially (warm()), then share it read-only
/// across worker threads (lookup() is const and never mutates).
class SphereTermCache {
 public:
  static constexpr unsigned kMaxDegree = 16;

  /// Computes and memoizes the term for (pf, degree). Not thread-safe.
  double warm(double pf, unsigned degree);

  /// Read-only lookup; recomputes directly on a miss, so a cold cache is a
  /// correctness no-op. Safe from several threads once warming stopped.
  [[nodiscard]] double lookup(double pf, unsigned degree) const noexcept;

  /// Distinct pf values seen (grid diagnostics).
  [[nodiscard]] std::size_t distinct_pf() const noexcept {
    return terms_.size();
  }

 private:
  struct Terms {
    std::uint32_t computed_mask = 0;  // bit d set => value[d] valid
    std::array<double, kMaxDegree + 1> value{};
  };
  util::FlatMap64<Terms> terms_;  // key: bit pattern of pf
};

/// ln of Eq. 9. R_sys underflows double precision already for modest N·t/θ
/// (e.g. 10^5 nodes over 700 h is e^-1612), but the failure rate only needs
/// the logarithm, so Eq. 10 is computed from this. Returns -infinity when
/// some sphere fails with certainty within t. With a non-null `cache` the
/// sphere terms are looked up instead of recomputed (bitwise-identical
/// results either way).
[[nodiscard]] double log_system_reliability(
    std::size_t n, double r, double t, double node_mtbf,
    NodeFailureModel model, const SphereTermCache* cache = nullptr);

/// Failure characterization of the whole (partially) redundant system over
/// the redundancy-dilated run time (Eq. 10).
struct SystemFailure {
  double reliability = 1.0;    ///< R_sys over t_Red
  double failure_rate = 0.0;   ///< λ_sys = -ln(R_sys)/t_Red
  double mtbf = 0.0;           ///< Θ_sys = 1/λ_sys (infinity if λ_sys == 0)
};

/// Full redundancy-side pipeline: Eq. 1 then Eqs. 9-10 evaluated over t_Red.
/// `cache` (optional) memoizes the Eq. 9 sphere terms across calls.
[[nodiscard]] SystemFailure system_failure(const AppParams& app,
                                           const MachineParams& machine,
                                           double r, NodeFailureModel model,
                                           const SphereTermCache* cache =
                                               nullptr);

/// Section 4.3's "birthday problem" approximation as printed in the paper:
/// p(n) ≈ 1 - ((n-2)/n)^{n(n-1)/2}. (Note: as printed this tends to 1, not
/// the claimed 0 — see the implementation comment; we reproduce the formula
/// verbatim and also expose the per-failure shadow-hit probability below,
/// which does vanish with n and carries the paper's intended argument.)
[[nodiscard]] double birthday_collision_probability(double n) noexcept;

/// Probability that the *next* node failure hits the one shadow of an
/// already-failed primary among the n-1 survivors: 1/(n-1). This is the
/// quantity that "becomes less likely as the number of nodes increases"
/// (Section 1's birthday-problem discussion).
[[nodiscard]] double shadow_hit_probability(double n) noexcept;

}  // namespace redcr::model
