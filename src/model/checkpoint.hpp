// Checkpoint/restart-side model: Section 4.2 of the paper (Eqs. 11-15) plus
// Young's first-order interval as a baseline.
#pragma once

#include "model/params.hpp"

namespace redcr::model {

/// Young's first-order optimal checkpoint interval: δ = sqrt(2cΘ).
[[nodiscard]] double young_interval(double checkpoint_cost,
                                    double system_mtbf) noexcept;

/// Eq. 15 — Daly's higher-order optimal interval:
///   δ_opt = sqrt(2cΘ)·[1 + (1/3)sqrt(c/2Θ) + (1/9)(c/2Θ)] - c   for c < 2Θ,
///   δ_opt = Θ                                                   otherwise
/// (the c ≥ 2Θ guard is from Daly's original paper).
[[nodiscard]] double daly_interval(double checkpoint_cost,
                                   double system_mtbf) noexcept;

/// Eq. 12 — expected lost work per failure under periodic checkpointing with
/// work interval `delta`, checkpoint cost `c` and system MTBF `theta`:
///   t_lw = [Θ - Θ e^{-δ/Θ} - δ e^{-δ_c/Θ}] / (1 - e^{-δ_c/Θ}),  δ_c = δ + c.
/// Result lies in [0, δ] and tends to ~δ/2 for Θ ≫ δ.
[[nodiscard]] double expected_lost_work(double delta, double checkpoint_cost,
                                        double system_mtbf) noexcept;

/// Eq. 13 — expected duration of one combined restart+rework phase, which
/// accounts for failures striking *during* restart/rework. `restart_cost` is
/// R, `lost_work` is t_lw, `theta` the system MTBF.
[[nodiscard]] double restart_rework_time(double restart_cost, double lost_work,
                                         double system_mtbf,
                                         RestartModel model) noexcept;

/// Eq. 14 — total completion time
///   T_total = (t + t·c/δ) / (1 - λ·t_RR).
/// Returns +infinity when λ·t_RR ≥ 1 (the job cannot make progress: the
/// expected repair time per failure exceeds the expected time to the next
/// failure).
[[nodiscard]] double total_time(double base_time, double checkpoint_cost,
                                double delta, double failure_rate,
                                double t_rr) noexcept;

}  // namespace redcr::model
