// Vectorized exp/expm1/log: Cephes-style argument reduction plus Taylor /
// atanh polynomials evaluated in Estrin form, written as plain element loops
// with branchless selects so the auto-vectorizer can turn them into
// AVX2/AVX-512 code. Estrin (pairwise) evaluation matters here: with
// -ffp-contract=off there are no FMAs, and a Horner chain of 13 serial
// multiply-adds is latency-bound at ~4x the cost; the pairwise tree keeps
// the dependency depth logarithmic.
//
// This file is compiled with -O3 -ffp-contract=off (see
// src/model/CMakeLists.txt): with contraction off, every dispatch target
// below performs the exact same sequence of correctly rounded IEEE
// operations per element, so all three targets return bitwise-identical
// results on every x86-64 host.
#include "model/kernels.hpp"

#include <bit>
#include <cstdint>
#include <limits>

namespace redcr::model::vk {

namespace {

constexpr double kLog2E = 1.4426950408889634074;       // log2(e)
constexpr double kLn2Hi = 6.93145751953125e-1;         // ln 2, high 21 bits
constexpr double kLn2Lo = 1.42860682030941723212e-6;   // ln 2 - kLn2Hi
constexpr double kInf = std::numeric_limits<double>::infinity();

// exp(x) overflows above ~709.782712893 and is exactly 0 below
// ~-745.133219101 (log of the smallest subnormal). The clamp bounds sit
// just outside so the reduced-argument pipeline never feeds floor() a
// non-finite value; the final selects restore the exact inf/0/NaN answers.
constexpr double kOverflow = 709.782712893384;
constexpr double kUnderflow = -745.133219101941;

/// Degree-13 Taylor polynomial of e^r (coefficients 1/k!), Estrin form.
/// Truncation < 0.03 ulp on the reduced interval |r| <= ln2/2.
__attribute__((always_inline)) inline double exp_poly(double r) noexcept {
  const double r2 = r * r;
  const double r4 = r2 * r2;
  const double r8 = r4 * r4;
  const double e0 = 1.0 + r;                                   // 0!,1!
  const double e1 = 0.5 + r * 1.6666666666666666e-1;           // 2!,3!
  const double e2 = 4.1666666666666664e-2 + r * 8.333333333333333e-3;
  const double e3 = 1.3888888888888889e-3 + r * 1.984126984126984e-4;
  const double e4 = 2.4801587301587302e-5 + r * 2.7557319223985888e-6;
  const double e5 = 2.7557319223985893e-7 + r * 2.50521083854417e-8;
  const double e6 = 2.08767569878681e-9 + r * 1.6059043836821613e-10;
  const double f0 = e0 + r2 * e1;
  const double f1 = e2 + r2 * e3;
  const double f2 = e4 + r2 * e5;
  const double g0 = f0 + r4 * f1;
  const double g1 = f2 + r4 * e6;
  return g0 + r8 * g1;
}

/// expm1(v)/v: the same series shifted down one degree (coefficients
/// 1/(k+1)!), full relative precision for |v| <= 0.35.
__attribute__((always_inline)) inline double expm1_poly(double v) noexcept {
  const double v2 = v * v;
  const double v4 = v2 * v2;
  const double v8 = v4 * v4;
  const double e0 = 1.0 + v * 0.5;                             // 1!,2!
  const double e1 = 1.6666666666666666e-1 + v * 4.1666666666666664e-2;
  const double e2 = 8.333333333333333e-3 + v * 1.3888888888888889e-3;
  const double e3 = 1.984126984126984e-4 + v * 2.4801587301587302e-5;
  const double e4 = 2.7557319223985888e-6 + v * 2.7557319223985893e-7;
  const double e5 = 2.50521083854417e-8 + v * 2.08767569878681e-9;
  const double f0 = e0 + v2 * e1;
  const double f1 = e2 + v2 * e3;
  const double f2 = e4 + v2 * e5;
  const double g0 = f0 + v4 * f1;
  const double g1 = f2 + v4 * 1.6059043836821613e-10;          // 1/13!
  return g0 + v8 * g1;
}

// Round-to-nearest-integer via the 1.5*2^52 magic constant: adding it
// pushes the fractional bits off the mantissa (round-to-nearest-even), and
// the low mantissa bits of the sum are the integer in two's complement.
// Works for |k| < 2^51 and, unlike a double->int64 conversion, vectorizes
// on AVX2 (no vcvttpd2qq needed).
constexpr double kRoundMagic = 6755399441055744.0;

/// Core exp pipeline, shared by every dispatch target via forced inlining.
/// Branch-free per element (ternary selects only, so the loop if-converts
/// and auto-vectorizes): clamps, reduces x = k ln2 + r with |r| ~<= ln2/2,
/// evaluates the polynomial, scales by 2^k through the exponent bits, then
/// repairs the special cases with selects. The 2^k scale is always applied
/// in two halves 2^k1 * 2^k2 so each factor stays a normal number for the
/// whole k range [-1075, 1025] and only the final multiply rounds into the
/// subnormal (or infinite) range.
__attribute__((always_inline)) inline void exp_body(const double* x,
                                                    double* out,
                                                    std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    double xc = !(v > -746.0) ? -746.0 : v;  // also catches NaN
    xc = xc > 710.0 ? 710.0 : xc;
    const double kshift = xc * kLog2E + kRoundMagic;
    const std::int64_t ki = std::bit_cast<std::int64_t>(kshift) -
                            std::bit_cast<std::int64_t>(kRoundMagic);
    const double k = kshift - kRoundMagic;
    const double r = (xc - k * kLn2Hi) - k * kLn2Lo;
    const double p = exp_poly(r);
    // Split k = k1 + k2 with k1 = round-down-half via a biased logical
    // shift (arithmetic 64-bit shifts don't vectorize on AVX2).
    const std::int64_t k1 =
        static_cast<std::int64_t>(
            static_cast<std::uint64_t>(ki + 2048) >> 1) - 1024;
    const std::int64_t k2 = ki - k1;
    const double s1 =
        std::bit_cast<double>(static_cast<std::uint64_t>(k1 + 1023) << 52);
    const double s2 =
        std::bit_cast<double>(static_cast<std::uint64_t>(k2 + 1023) << 52);
    double result = (p * s1) * s2;
    result = v > kOverflow ? kInf : result;
    result = v < kUnderflow ? 0.0 : result;
    result = v != v ? v : result;  // NaN in, same NaN out
    out[i] = result;
  }
}

__attribute__((always_inline)) inline void expm1_body(
    const double* x, double* out, std::size_t n) noexcept {
  exp_body(x, out, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    const double big = out[i] - 1.0;
    const double small = v * expm1_poly(v);
    const double av = v < 0.0 ? -v : v;
    out[i] = av <= 0.35 ? small : big;
  }
}

/// log via the atanh series: normalize x = 2^e * m with m in
/// [sqrt(1/2), sqrt(2)), then ln m = 2 atanh(r) with r = (m-1)/(m+1),
/// |r| <= 0.1716. Degree 10 in r^2 keeps truncation below 1e-17 relative.
/// Branch-free (ternary selects only) so the loop auto-vectorizes.
__attribute__((always_inline)) inline void log_body(const double* x,
                                                    double* out,
                                                    std::size_t n) noexcept {
  constexpr double kMinNormal = 2.2250738585072014e-308;
  constexpr double kSqrt2 = 1.4142135623730951;
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    // Pre-scale subnormals so the exponent-field math below sees a normal
    // number; garbage lanes (v <= 0, inf, NaN) are repaired by the final
    // selects, they just need to flow through without trapping.
    const bool tiny = v < kMinNormal;  // only consulted when v > 0
    double xs = v * (tiny ? 0x1p+54 : 1.0);
    xs = !(xs > 0.0) ? 1.0 : xs;  // keep the pipeline finite for bad lanes
    xs = xs > 1.7e308 ? 1.0 : xs;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(xs);
    // Biased exponent as a double without an int->fp conversion: or the
    // 11-bit field into the mantissa of 2^52 and subtract 2^52 (exact).
    const double eb =
        std::bit_cast<double>((bits >> 52) | 0x4330000000000000ull) -
        4503599627370496.0;
    const double m0 = std::bit_cast<double>(
        (bits & 0x000fffffffffffffull) | 0x3ff0000000000000ull);
    const bool fold = m0 > kSqrt2;
    const double m = m0 * (fold ? 0.5 : 1.0);
    const double ed =
        eb - 1023.0 + (fold ? 1.0 : 0.0) + (tiny ? -54.0 : 0.0);
    const double r = (m - 1.0) / (m + 1.0);
    const double z = r * r;
    const double z2 = z * z;
    const double z4 = z2 * z2;
    const double z8 = z4 * z4;
    // 2 atanh(r) = 2r (1 + z/3 + z^2/5 + ... + z^10/21), Estrin.
    const double a0 = 1.0 + z * 3.3333333333333333e-1;
    const double a1 = 2.0e-1 + z * 1.4285714285714285e-1;
    const double a2 = 1.1111111111111111e-1 + z * 9.0909090909090912e-2;
    const double a3 = 7.6923076923076927e-2 + z * 6.6666666666666666e-2;
    const double a4 = 5.8823529411764705e-2 + z * 5.2631578947368418e-2;
    const double a5 = 4.7619047619047616e-2;
    const double b0 = a0 + z2 * a1;
    const double b1 = a2 + z2 * a3;
    const double b2 = a4 + z2 * a5;
    const double c0 = b0 + z4 * b1;
    const double poly = c0 + z8 * b2;
    const double lnm = 2.0 * r * poly;
    double result = ed * kLn2Hi + (lnm + ed * kLn2Lo);
    result = v == 0.0 ? -kInf : result;
    result = v < 0.0 ? qnan : result;
    result = v > 1.7e308 ? v : result;  // +inf (finite doubles are below)
    result = v != v ? v : result;
    out[i] = result;
  }
}

// Dispatch targets. The bodies inline into each (default-ISA code may
// always inline into a wider-ISA caller); -ffp-contract=off keeps them
// bitwise-equal, so the choice only affects speed.
__attribute__((target("avx512f,avx512dq,avx512vl"))) void exp_avx512(
    const double* x, double* out, std::size_t n) noexcept {
  exp_body(x, out, n);
}
__attribute__((target("avx512f,avx512dq,avx512vl"))) void expm1_avx512(
    const double* x, double* out, std::size_t n) noexcept {
  expm1_body(x, out, n);
}
__attribute__((target("avx512f,avx512dq,avx512vl"))) void log_avx512(
    const double* x, double* out, std::size_t n) noexcept {
  log_body(x, out, n);
}
__attribute__((target("avx2"))) void exp_avx2(const double* x, double* out,
                                              std::size_t n) noexcept {
  exp_body(x, out, n);
}
__attribute__((target("avx2"))) void expm1_avx2(const double* x, double* out,
                                                std::size_t n) noexcept {
  expm1_body(x, out, n);
}
__attribute__((target("avx2"))) void log_avx2(const double* x, double* out,
                                              std::size_t n) noexcept {
  log_body(x, out, n);
}
void exp_base(const double* x, double* out, std::size_t n) noexcept {
  exp_body(x, out, n);
}
void expm1_base(const double* x, double* out, std::size_t n) noexcept {
  expm1_body(x, out, n);
}
void log_base(const double* x, double* out, std::size_t n) noexcept {
  log_body(x, out, n);
}

enum class Isa { kBase, kAvx2, kAvx512 };

Isa detect_isa() noexcept {
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl"))
    return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kBase;
}

Isa active() noexcept {
  static const Isa isa = detect_isa();
  return isa;
}

}  // namespace

void exp(const double* x, double* out, std::size_t n) noexcept {
  switch (active()) {
    case Isa::kAvx512: exp_avx512(x, out, n); return;
    case Isa::kAvx2: exp_avx2(x, out, n); return;
    case Isa::kBase: exp_base(x, out, n); return;
  }
}

void expm1(const double* x, double* out, std::size_t n) noexcept {
  switch (active()) {
    case Isa::kAvx512: expm1_avx512(x, out, n); return;
    case Isa::kAvx2: expm1_avx2(x, out, n); return;
    case Isa::kBase: expm1_base(x, out, n); return;
  }
}

void log(const double* x, double* out, std::size_t n) noexcept {
  switch (active()) {
    case Isa::kAvx512: log_avx512(x, out, n); return;
    case Isa::kAvx2: log_avx2(x, out, n); return;
    case Isa::kBase: log_base(x, out, n); return;
  }
}

const char* active_isa() noexcept {
  switch (active()) {
    case Isa::kAvx512: return "avx512";
    case Isa::kAvx2: return "avx2";
    case Isa::kBase: return "x86-64";
  }
  return "x86-64";
}

}  // namespace redcr::model::vk
