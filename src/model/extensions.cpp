#include "model/extensions.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "model/checkpoint.hpp"

namespace redcr::model {

Prediction predict_same_nodes(const CombinedConfig& config, double r) {
  assert(r >= 1.0);
  Prediction p;
  p.r = r;
  // Same nodes: machine cost stays N regardless of the degree.
  p.total_procs = config.app.num_procs;
  // Everything dilates: replicas time-share each node's compute *and* the
  // per-node NIC carries r-fold traffic.
  p.redundant_time = config.app.base_time * r;

  const double log_rel = log_system_reliability(
      config.app.num_procs, r, p.redundant_time, config.machine.node_mtbf,
      config.failure_model);
  p.reliability = std::exp(log_rel);
  if (!std::isfinite(log_rel)) {
    p.failure_rate = std::numeric_limits<double>::infinity();
    p.system_mtbf = 0.0;
    p.total_time = std::numeric_limits<double>::infinity();
    return p;
  }
  p.failure_rate = -log_rel / p.redundant_time;
  p.system_mtbf = p.failure_rate == 0.0
                      ? std::numeric_limits<double>::infinity()
                      : 1.0 / p.failure_rate;
  p.interval = config.fixed_interval.value_or(
      config.use_young_interval
          ? young_interval(config.machine.checkpoint_cost, p.system_mtbf)
          : daly_interval(config.machine.checkpoint_cost, p.system_mtbf));
  p.lost_work = expected_lost_work(p.interval, config.machine.checkpoint_cost,
                                   p.system_mtbf);
  p.restart_rework =
      restart_rework_time(config.machine.restart_cost, p.lost_work,
                          p.system_mtbf, config.restart_model);
  p.total_time = total_time(p.redundant_time, config.machine.checkpoint_cost,
                            p.interval, p.failure_rate, p.restart_rework);
  p.expected_checkpoints = p.redundant_time / p.interval;
  p.expected_failures = std::isfinite(p.total_time)
                            ? p.total_time * p.failure_rate
                            : std::numeric_limits<double>::infinity();
  return p;
}

IntervalOptimum optimal_interval_search(const CombinedConfig& config,
                                        double r) {
  IntervalOptimum result;
  const Prediction daly = predict(config, r);
  result.daly_interval = daly.interval;
  result.daly_total_time = daly.total_time;

  CombinedConfig probe = config;
  auto time_at = [&](double delta) {
    probe.fixed_interval = delta;
    return predict(probe, r).total_time;
  };

  // T(δ) is not globally unimodal: past the λ·t_RR = 1 pole (Eq. 14) it is
  // an infinite plateau, which defeats plain golden-section. Scan a log
  // grid first, then refine between the best point's neighbours.
  const double lo_bound = std::max(config.machine.checkpoint_cost / 10.0, 1e-3);
  const double hi_bound =
      std::isfinite(daly.system_mtbf)
          ? std::max(daly.system_mtbf * 20.0, daly.interval * 4.0)
          : daly.interval * 4.0;
  constexpr int kGrid = 256;
  const double log_lo = std::log(lo_bound);
  const double log_hi = std::log(hi_bound);
  double best_delta = daly.interval;
  double best_time = daly.total_time;
  int best_index = -1;
  for (int i = 0; i <= kGrid; ++i) {
    const double delta =
        std::exp(log_lo + (log_hi - log_lo) * i / static_cast<double>(kGrid));
    const double t = time_at(delta);
    if (t < best_time) {
      best_time = t;
      best_delta = delta;
      best_index = i;
    }
  }
  // Golden-section between the neighbours of the winning grid point (the
  // function is unimodal on the finite side of the pole).
  double lo = best_index > 0 ? std::exp(log_lo + (log_hi - log_lo) *
                                                     (best_index - 1) / kGrid)
                             : best_delta / 1.5;
  double hi = best_index >= 0 && best_index < kGrid
                  ? std::exp(log_lo + (log_hi - log_lo) * (best_index + 1) /
                                          kGrid)
                  : best_delta * 1.5;
  constexpr double kInvPhi = 0.6180339887498949;
  double a = hi - kInvPhi * (hi - lo);
  double b = lo + kInvPhi * (hi - lo);
  double fa = time_at(a);
  double fb = time_at(b);
  for (int iter = 0; iter < 100 && (hi - lo) > 1e-5 * hi; ++iter) {
    if (fa < fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - kInvPhi * (hi - lo);
      fa = time_at(a);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + kInvPhi * (hi - lo);
      fb = time_at(b);
    }
  }
  const double refined = (lo + hi) / 2.0;
  if (time_at(refined) < best_time) {
    best_delta = refined;
    best_time = time_at(refined);
  }
  result.best_interval = best_delta;
  result.best_total_time = best_time;
  result.daly_penalty =
      std::isfinite(result.best_total_time) && result.best_total_time > 0.0
          ? result.daly_total_time / result.best_total_time - 1.0
          : 0.0;
  return result;
}

namespace {

/// Central-difference log-log derivative of T_total along one parameter.
template <typename Setter>
double elasticity(const CombinedConfig& config, double r, double base_value,
                  Setter set) {
  constexpr double kStep = 0.05;
  CombinedConfig up = config;
  set(up, base_value * (1.0 + kStep));
  CombinedConfig down = config;
  set(down, base_value * (1.0 - kStep));
  const double t_up = predict(up, r).total_time;
  const double t_down = predict(down, r).total_time;
  if (!std::isfinite(t_up) || !std::isfinite(t_down)) return 0.0;
  return (std::log(t_up) - std::log(t_down)) /
         (std::log1p(kStep) - std::log1p(-kStep));
}

}  // namespace

void UnreliableCkptParams::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("redcr::model::UnreliableCkptParams: " + what);
  };
  if (!(ckpt_validity >= 0.0 && ckpt_validity <= 1.0))
    fail("ckpt_validity must be in [0, 1]");
  if (!(restart_success >= 0.0 && restart_success <= 1.0))
    fail("restart_success must be in [0, 1]");
  if (retention_depth < 1) fail("retention_depth must be >= 1");
  if (max_restart_attempts < 1) fail("max_restart_attempts must be >= 1");
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const auto& lvl = levels[l];
    const std::string at = "levels[" + std::to_string(l) + "].";
    if (!(lvl.recovery_prob >= 0.0 && lvl.recovery_prob <= 1.0))
      fail(at + "recovery_prob must be in [0, 1]");
    if (!(lvl.fetch_cost >= 0.0)) fail(at + "fetch_cost must be >= 0");
    if (!(lvl.staleness_periods >= 0.0))
      fail(at + "staleness_periods must be >= 0");
  }
  if (!(flush_cost >= 0.0)) fail("flush_cost must be >= 0");
  if (!(flush_period >= 1.0)) fail("flush_period must be >= 1");
  if (!(async_exposed_fraction >= 0.0 && async_exposed_fraction <= 1.0))
    fail("async_exposed_fraction must be in [0, 1]");
}

UnreliablePrediction predict_unreliable(const CombinedConfig& config, double r,
                                        const UnreliableCkptParams& u) {
  u.validate();
  UnreliablePrediction out;
  out.base = predict(config, r);

  const double s = u.restart_success;
  const double q = 1.0 - u.ckpt_validity;  // P(a generation is corrupt)
  const int a_max = u.max_restart_attempts;
  const int d = u.retention_depth;

  // Truncated geometric restart attempts: P(K = k) ∝ (1-s)^(k-1)·s for
  // k ≤ A, conditioned on success within A attempts.
  const double p_all_restarts_fail = std::pow(1.0 - s, a_max);
  if (s > 0.0) {
    double num = 0.0;
    for (int k = 1; k <= a_max; ++k)
      num += k * std::pow(1.0 - s, k - 1) * s;
    out.expected_restart_attempts = num / (1.0 - p_all_restarts_fail);
  } else {
    out.expected_restart_attempts = static_cast<double>(a_max);
  }

  // The probability no retained state can serve a recovery: the flat model
  // walks the d retained generations of one store; the hierarchy model
  // walks the configured levels fastest-first instead (fold validity into
  // each level's recovery_prob).
  double p_no_recovery;
  const double period = out.base.interval + config.machine.checkpoint_cost;
  if (u.levels.empty()) {
    // Fallback depth over d retained generations, newest-first, conditioned
    // on at least one validating: P(depth = k) ∝ q^k·p_v for k < d.
    p_no_recovery = std::pow(q, d);
    if (u.ckpt_validity > 0.0 && p_no_recovery < 1.0) {
      double num = 0.0;
      for (int k = 0; k < d; ++k)
        num += k * std::pow(q, k) * u.ckpt_validity;
      out.expected_fallback_depth = num / (1.0 - p_no_recovery);
    }

    // Extra cost per failure: extra restart attempts at R each, plus one
    // checkpoint period (δ + c) of re-done progress per generation fallen
    // back. Backoff delays are deliberately left out — they are an
    // implementation knob, small against R by construction.
    out.per_failure_overhead =
        (out.expected_restart_attempts - 1.0) * config.machine.restart_cost +
        out.expected_fallback_depth * period;
  } else {
    // Cheapest-surviving-level recovery: level l serves iff it can and no
    // faster level could, so P(serve = l) = p_l · Π_{j<l}(1 - p_j).
    double p_none = 1.0;
    out.level_serve_prob.reserve(u.levels.size());
    for (const auto& lvl : u.levels) {
      out.level_serve_prob.push_back(p_none * lvl.recovery_prob);
      p_none *= 1.0 - lvl.recovery_prob;
    }
    p_no_recovery = p_none;
    const double p_any = 1.0 - p_none;
    if (p_any > 0.0) {
      double fetch = 0.0;
      double staleness = 0.0;
      for (std::size_t l = 0; l < u.levels.size(); ++l) {
        fetch += out.level_serve_prob[l] * u.levels[l].fetch_cost;
        staleness += out.level_serve_prob[l] * u.levels[l].staleness_periods;
      }
      out.expected_fetch_cost = fetch / p_any;
      out.expected_staleness_rework = staleness / p_any * period;
    }
    out.per_failure_overhead =
        (out.expected_restart_attempts - 1.0) * config.machine.restart_cost +
        out.expected_fetch_cost + out.expected_staleness_rework;
  }
  out.recovery_probability = 1.0 - p_no_recovery;

  // One recovery aborts if all A attempts fail, or (having restarted)
  // nothing retained can serve.
  out.abort_probability_per_failure =
      p_all_restarts_fail + (1.0 - p_all_restarts_fail) * p_no_recovery;
  const double n_f = out.base.expected_failures;
  out.abort_probability =
      std::isfinite(n_f)
          ? 1.0 - std::pow(1.0 - out.abort_probability_per_failure, n_f)
          : 1.0;
  if (out.abort_probability_per_failure == 0.0) out.abort_probability = 0.0;

  // PFS drains: every flush_period-th checkpoint pays flush_cost on the
  // critical path — all of it when blocking, only the exposed fraction
  // (terminal drain + interference) when asynchronous.
  if (u.flush_cost > 0.0 && std::isfinite(out.base.expected_checkpoints)) {
    const double exposure = u.async_flush ? u.async_exposed_fraction : 1.0;
    out.flush_overhead_total =
        out.base.expected_checkpoints / u.flush_period * u.flush_cost *
        exposure;
  }

  out.total_time =
      std::isfinite(out.base.total_time) && std::isfinite(n_f)
          ? out.base.total_time + n_f * out.per_failure_overhead +
                out.flush_overhead_total
          : std::numeric_limits<double>::infinity();
  return out;
}

FailureWaste predicted_failure_waste(double interval, double ckpt_cost,
                                     double restart_cost) {
  const auto check = [](double v, const char* name) {
    if (!(v >= 0.0))  // catches NaN too
      throw std::invalid_argument(
          std::string("predicted_failure_waste: ") + name +
          " must be >= 0, got " + std::to_string(v));
  };
  check(interval, "interval");
  check(ckpt_cost, "ckpt_cost");
  check(restart_cost, "restart_cost");
  FailureWaste w;
  // A failure lands uniformly inside a checkpoint period of length δ + c;
  // expected work lost since the last durable snapshot is half of it.
  w.rework = (interval + ckpt_cost) / 2.0;
  w.restart = restart_cost;
  return w;
}

void SdcModelParams::validate() const {
  const auto check = [](double v, const char* name) {
    if (!(v >= 0.0) || !std::isfinite(v))
      throw std::invalid_argument(std::string("SdcModelParams: ") + name +
                                  " must be finite and >= 0, got " +
                                  std::to_string(v));
  };
  check(interval, "interval");
  check(ckpt_cost, "ckpt_cost");
  check(compute_per_iteration, "compute_per_iteration");
  check(single_ranks, "single_ranks");
  check(dual_ranks, "dual_ranks");
  check(triple_ranks, "triple_ranks");
  if (!(interval + ckpt_cost > 0.0))
    throw std::invalid_argument(
        "SdcModelParams: checkpoint period (interval + ckpt_cost) must be "
        "> 0");
  if (!(compute_per_iteration > 0.0))
    throw std::invalid_argument(
        "SdcModelParams: compute_per_iteration must be > 0 (the detector "
        "runs once per iteration)");
  if (single_ranks + dual_ranks + triple_ranks <= 0.0 &&
      !(redundancy >= 1.0 && redundancy <= 3.0))
    throw std::invalid_argument(
        "SdcModelParams: give an explicit sphere-degree census or a "
        "redundancy in [1, 3] to derive one");
}

SdcPrediction predict_sdc(const SdcModelParams& params) {
  params.validate();
  SdcPrediction out;

  // Census: explicit counts, or the paper's partition in the continuum
  // limit — degree mix (2-r, r-1) doubles below r = 2, (3-r, r-2) triples
  // above, weighted by the replicas each sphere occupies.
  double s = params.single_ranks;
  double d = params.dual_ranks;
  double t = params.triple_ranks;
  if (s + d + t <= 0.0) {
    const double r = params.redundancy;
    if (r <= 2.0) {
      s = 2.0 - r;
      d = 2.0 * (r - 1.0);
      t = 0.0;
    } else {
      s = 0.0;
      d = 2.0 * (3.0 - r);
      t = 3.0 * (r - 2.0);
    }
  }
  const double census = s + d + t;
  out.p_silent = s / census;
  out.p_detect = d / census;
  out.p_correct = t / census;

  // Phase split: an at-rest infection lands uniformly inside a checkpoint
  // period of length δ + c (see the header's derivation).
  const double period = params.interval + params.ckpt_cost;
  const double p_work = params.interval / period;
  const double p_ckpt = params.ckpt_cost / period;
  const double tc = params.compute_per_iteration;

  // During work: caught at the same iteration's halo, T_c/2 away; nothing
  // was committed since, so nothing invalidates. During a checkpoint: the
  // epoch publishes unverified, and the detection waits out the remaining
  // checkpoint (c/2) plus one full compute leg.
  out.detection_latency =
      p_work * (tc / 2.0) + p_ckpt * (params.ckpt_cost / 2.0 + tc);
  out.invalidated_depth = p_ckpt;
  // Rollback target is the last *verified* checkpoint: a work-phase
  // infection loses the period's work so far (δ/2) plus the detection leg;
  // a checkpoint-phase infection additionally forfeits the whole preceding
  // period's work (the invalidated epoch banked it in vain).
  out.rework_per_detection =
      p_work * (params.interval / 2.0 + tc / 2.0) +
      p_ckpt * (params.interval + tc);
  return out;
}

Sensitivity sensitivity_at(const CombinedConfig& config, double r) {
  Sensitivity s;
  s.wrt_node_mtbf =
      elasticity(config, r, config.machine.node_mtbf,
                 [](CombinedConfig& c, double v) { c.machine.node_mtbf = v; });
  s.wrt_checkpoint_cost = elasticity(
      config, r, config.machine.checkpoint_cost,
      [](CombinedConfig& c, double v) { c.machine.checkpoint_cost = v; });
  s.wrt_restart_cost = elasticity(
      config, r, config.machine.restart_cost,
      [](CombinedConfig& c, double v) { c.machine.restart_cost = v; });
  s.wrt_comm_fraction = elasticity(
      config, r, config.app.comm_fraction,
      [](CombinedConfig& c, double v) { c.app.comm_fraction = v; });
  s.wrt_num_procs =
      elasticity(config, r, static_cast<double>(config.app.num_procs),
                 [](CombinedConfig& c, double v) {
                   c.app.num_procs = static_cast<std::size_t>(v);
                 });
  return s;
}

}  // namespace redcr::model
