#include "model/combined.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "model/checkpoint.hpp"

namespace redcr::model {

namespace {

double choose_interval(const CombinedConfig& config, double system_mtbf) {
  if (config.fixed_interval) return *config.fixed_interval;
  return config.use_young_interval
             ? young_interval(config.machine.checkpoint_cost, system_mtbf)
             : daly_interval(config.machine.checkpoint_cost, system_mtbf);
}

}  // namespace

Prediction predict(const CombinedConfig& config, double r,
                   const SphereTermCache* cache) {
  assert(r >= 1.0);
  Prediction p;
  p.r = r;
  p.total_procs = partition_processes(config.app.num_procs, r).total_procs;
  p.redundant_time = redundant_time(config.app, r);

  const SystemFailure sf = system_failure(config.app, config.machine, r,
                                          config.failure_model, cache);
  p.reliability = sf.reliability;
  p.failure_rate = sf.failure_rate;
  p.system_mtbf = sf.mtbf;
  if (!std::isfinite(sf.failure_rate)) {
    // The system cannot survive even one t_Red interval in expectation under
    // the linearized node model; report "never completes".
    p.total_time = std::numeric_limits<double>::infinity();
    return p;
  }

  p.interval = choose_interval(config, sf.mtbf);
  p.lost_work =
      expected_lost_work(p.interval, config.machine.checkpoint_cost, sf.mtbf);
  p.restart_rework = restart_rework_time(config.machine.restart_cost,
                                         p.lost_work, sf.mtbf,
                                         config.restart_model);
  p.total_time = total_time(p.redundant_time, config.machine.checkpoint_cost,
                            p.interval, sf.failure_rate, p.restart_rework);
  p.expected_checkpoints = p.redundant_time / p.interval;
  p.expected_failures = std::isfinite(p.total_time)
                            ? p.total_time * sf.failure_rate
                            : std::numeric_limits<double>::infinity();
  return p;
}

Prediction predict_simplified(const CombinedConfig& config, double r,
                              const SphereTermCache* cache) {
  assert(r >= 1.0);
  Prediction p;
  p.r = r;
  p.total_procs = partition_processes(config.app.num_procs, r).total_procs;
  p.redundant_time = redundant_time(config.app, r);

  const SystemFailure sf = system_failure(config.app, config.machine, r,
                                          config.failure_model, cache);
  p.reliability = sf.reliability;
  p.failure_rate = sf.failure_rate;
  p.system_mtbf = sf.mtbf;
  if (!std::isfinite(sf.failure_rate)) {
    p.total_time = std::numeric_limits<double>::infinity();
    return p;
  }

  const double c = config.machine.checkpoint_cost;
  p.interval = young_interval(c, sf.mtbf);
  p.lost_work = 0.0;      // the simplified model drops rework
  p.restart_rework = config.machine.restart_cost;
  // T = t_Red + (t_Red/δ)·c + t_Red·λ·R  (Section 6, consistent form).
  p.total_time = p.redundant_time +
                 (p.redundant_time / p.interval) * c +
                 p.redundant_time * sf.failure_rate *
                     config.machine.restart_cost;
  p.expected_checkpoints = p.redundant_time / p.interval;
  p.expected_failures = p.redundant_time * sf.failure_rate;
  return p;
}

std::vector<Prediction> sweep_redundancy(const CombinedConfig& config,
                                         double r_begin, double r_end,
                                         double step) {
  assert(r_begin >= 1.0 && r_end >= r_begin && step > 0.0);
  std::vector<Prediction> out;
  // Walk an integer counter to avoid accumulating floating-point step error.
  const auto count =
      static_cast<std::size_t>(std::round((r_end - r_begin) / step)) + 1;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(predict(config, r_begin + static_cast<double>(i) * step));
  return out;
}

Optimum optimize_redundancy(const CombinedConfig& config, double r_begin,
                            double r_end, double grid_step) {
  assert(r_begin >= 1.0 && r_end > r_begin && grid_step > 0.0);
  // Phase 1: coarse grid scan. T_total(r) can have several local minima
  // (each integer degree anchors one), so a pure local method is unsafe.
  double best_r = r_begin;
  double best_t = std::numeric_limits<double>::infinity();
  const auto count =
      static_cast<std::size_t>(std::round((r_end - r_begin) / grid_step)) + 1;
  for (std::size_t i = 0; i < count; ++i) {
    const double r = r_begin + static_cast<double>(i) * grid_step;
    const double t = predict(config, r).total_time;
    if (t < best_t) {
      best_t = t;
      best_r = r;
    }
  }
  // Phase 2: golden-section refinement inside the winning cell.
  double lo = std::max(r_begin, best_r - grid_step);
  double hi = std::min(r_end, best_r + grid_step);
  constexpr double kInvPhi = 0.6180339887498949;
  double a = hi - kInvPhi * (hi - lo);
  double b = lo + kInvPhi * (hi - lo);
  double fa = predict(config, a).total_time;
  double fb = predict(config, b).total_time;
  for (int iter = 0; iter < 64 && (hi - lo) > 1e-6; ++iter) {
    if (fa < fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - kInvPhi * (hi - lo);
      fa = predict(config, a).total_time;
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + kInvPhi * (hi - lo);
      fb = predict(config, b).total_time;
    }
  }
  const double refined = (lo + hi) / 2.0;
  const Prediction refined_pred = predict(config, refined);
  Optimum opt;
  if (refined_pred.total_time < best_t) {
    opt.r = refined;
    opt.prediction = refined_pred;
  } else {
    opt.r = best_r;
    opt.prediction = predict(config, best_r);
  }
  return opt;
}

namespace {

/// Signed difference d(N) used by the bisection searches; `f` maps a
/// prediction pair to the difference.
template <typename DiffFn>
std::optional<double> bisect_procs(CombinedConfig config, double n_lo,
                                   double n_hi, DiffFn diff) {
  assert(n_lo >= 1.0 && n_hi > n_lo);
  auto eval = [&](double n) {
    config.app.num_procs = static_cast<std::size_t>(std::llround(n));
    return diff(config);
  };
  double d_lo = eval(n_lo);
  double d_hi = eval(n_hi);
  if (std::isnan(d_lo) || std::isnan(d_hi)) return std::nullopt;
  if (d_lo == 0.0) return n_lo;
  if (d_hi == 0.0) return n_hi;
  if ((d_lo > 0.0) == (d_hi > 0.0)) return std::nullopt;  // no sign change
  double lo = n_lo, hi = n_hi;
  while (hi - lo > 0.5) {
    const double mid = (lo + hi) / 2.0;
    const double d_mid = eval(mid);
    if (d_mid == 0.0) return mid;
    if ((d_mid > 0.0) == (d_lo > 0.0)) {
      lo = mid;
      d_lo = d_mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

/// Difference helper that treats two infinities as "no information" (NaN).
double finite_diff(double a, double b) {
  if (std::isinf(a) && std::isinf(b))
    return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(a)) return 1.0;
  if (std::isinf(b)) return -1.0;
  return a - b;
}

}  // namespace

std::optional<double> crossover_procs(CombinedConfig config, double r_a,
                                      double r_b, double n_lo, double n_hi) {
  return bisect_procs(std::move(config), n_lo, n_hi,
                      [r_a, r_b](const CombinedConfig& cfg) {
                        return finite_diff(predict(cfg, r_a).total_time,
                                           predict(cfg, r_b).total_time);
                      });
}

std::optional<double> break_even_procs(CombinedConfig config, double r,
                                       double factor, double n_lo,
                                       double n_hi) {
  return bisect_procs(std::move(config), n_lo, n_hi,
                      [r, factor](const CombinedConfig& cfg) {
                        return finite_diff(
                            predict(cfg, 1.0).total_time,
                            factor * predict(cfg, r).total_time);
                      });
}

}  // namespace redcr::model
