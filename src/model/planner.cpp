#include "redcr/planner.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "model/combined.hpp"
#include "model/redundancy.hpp"

namespace redcr {
namespace {

// Canonical double encoding: collapse -0.0 into +0.0 so numerically equal
// grids hash identically; every other bit pattern (including NaNs) keys
// as-is — requests are compared by what the model would actually see.
std::uint64_t canon(double v) {
  if (v == 0.0) v = 0.0;
  return std::bit_cast<std::uint64_t>(v);
}

// FNV-1a over the canonical words. Collisions are tolerated: the cache
// index compares full keys on lookup (tested in test_planner.cpp).
std::size_t fnv1a(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : words) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<std::size_t>(h);
}

std::size_t pick_best(const std::vector<model::Prediction>& sweep) {
  std::size_t best = 0;
  double best_t = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].total_time < best_t) {
      best_t = sweep[i].total_time;
      best = i;
    }
  }
  return best;
}

std::vector<double> grid_degrees(const PlanRequest& request) {
  if (!request.degrees.empty()) return request.degrees;
  assert(request.r_begin >= 1.0 && request.r_end >= request.r_begin &&
         request.r_step > 0.0);
  // Integer-counter walk, mirroring model::sweep_redundancy, so the grid
  // carries no accumulated floating-point step error.
  const auto count = static_cast<std::size_t>(std::round(
                         (request.r_end - request.r_begin) / request.r_step)) +
                     1;
  std::vector<double> degrees;
  degrees.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    degrees.push_back(request.r_begin +
                      static_cast<double>(i) * request.r_step);
  return degrees;
}

}  // namespace

Planner::Planner(std::size_t plan_cache_capacity)
    : capacity_(plan_cache_capacity) {}

Planner::~Planner() = default;

Planner::PlanKey Planner::canonical_key(const PlanRequest& request) {
  PlanKey key;
  const model::CombinedConfig& c = request.config;
  key.words.reserve(16 + request.degrees.size());
  key.words.push_back(canon(c.app.base_time));
  key.words.push_back(canon(c.app.comm_fraction));
  key.words.push_back(static_cast<std::uint64_t>(c.app.num_procs));
  key.words.push_back(canon(c.machine.node_mtbf));
  key.words.push_back(canon(c.machine.checkpoint_cost));
  key.words.push_back(canon(c.machine.restart_cost));
  key.words.push_back(static_cast<std::uint64_t>(c.failure_model));
  key.words.push_back(static_cast<std::uint64_t>(c.restart_model));
  key.words.push_back(c.fixed_interval.has_value() ? 1u : 0u);
  key.words.push_back(c.fixed_interval ? canon(*c.fixed_interval) : 0u);
  key.words.push_back(c.use_young_interval ? 1u : 0u);
  key.words.push_back(static_cast<std::uint64_t>(request.mode));
  key.words.push_back(request.simplified ? 1u : 0u);
  // Encode the grid by the degrees it expands to, so an explicit degree
  // list and the equivalent range parameters hit the same entry.
  const std::vector<double> degrees = grid_degrees(request);
  key.words.push_back(degrees.size());
  for (double d : degrees) key.words.push_back(canon(d));
  key.hash = fnv1a(key.words);
  return key;
}

PlanResponse Planner::plan(const PlanRequest& request, int jobs) {
  PlanKey key = canonical_key(request);
  {
    std::lock_guard lock(mutex_);
    ++stats_.plans;
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.plan_cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
      return {it->second->sweep, it->second->best_index, /*from_cache=*/true};
    }
    ++stats_.plan_cache_misses;
  }

  // Evaluate outside the lock: grid evaluation is the expensive part and
  // must not serialize concurrent planners on distinct scenarios.
  model::BatchOptions options;
  options.jobs = jobs;
  options.mode = request.mode;
  options.simplified = request.simplified;
  const std::vector<double> degrees = grid_degrees(request);
  auto sweep = std::make_shared<const std::vector<model::Prediction>>(
      model::evaluate_batch(request.config, degrees, options));
  const std::size_t best = pick_best(*sweep);

  std::lock_guard lock(mutex_);
  stats_.points += sweep->size();
  // Re-check: a concurrent plan() for the same scenario may have landed
  // while we evaluated. First writer wins; both computed identical data.
  auto it = index_.find(key);
  if (it == index_.end()) {
    lru_.push_front(CacheEntry{std::move(key), sweep, best});
    index_.emplace(lru_.front().key, lru_.begin());
    while (capacity_ > 0 && lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.plan_cache_evictions;
    }
  }
  return {std::move(sweep), best, /*from_cache=*/false};
}

model::Prediction Planner::evaluate(const model::CombinedConfig& config,
                                    double r) {
  std::lock_guard lock(mutex_);
  ++stats_.evaluations;
  ++stats_.points;
  // Warm the planner's sphere-term cache, then evaluate through it:
  // repeated queries against the same (pf, degree) terms skip the Eq. 9
  // log/log1p work. Bitwise-identical to predict(config, r): lookup()
  // recomputes exactly what warm() stored.
  const model::Partition part =
      model::partition_processes(config.app.num_procs, r);
  const double t_red = model::redundant_time(config.app, r);
  const double pf = model::node_failure_probability(
      t_red, config.machine.node_mtbf, config.failure_model);
  if (part.n_floor_set > 0) sphere_cache_.warm(pf, part.floor_degree);
  sphere_cache_.warm(pf, part.ceil_degree);
  return model::predict(config, r, &sphere_cache_);
}

std::vector<model::Prediction> Planner::evaluate_batch(
    std::span<const model::BatchPoint> points,
    const model::BatchOptions& options) {
  {
    std::lock_guard lock(mutex_);
    ++stats_.evaluations;
    stats_.points += points.size();
  }
  // The batch engine carries its own per-worker caches; no shared state,
  // so concurrent batches proceed without holding the planner lock.
  return model::evaluate_batch(points, options);
}

Planner::Stats Planner::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace redcr
