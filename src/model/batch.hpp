// Batched evaluation of the combined model.
//
// The paper's headline studies evaluate predict() over large (config, r)
// grids — Figs. 13-14 sweep process counts per degree, Tables 4/5 sweep
// r × MTBF — and the serving front-end replays the same evaluation
// millions of times. Point evaluations are independent and dominated by
// the Eq. 9 sphere-reliability pow/log pair plus the Eq. 12-15 exp/expm1
// chain. evaluate_batch() stages the points into structure-of-arrays form
// tile by tile and finishes them with one of two pipelines:
//
//   EvalMode::kExact (default) — per point, the staged inputs are fed to
//     the exact same library functions predict() calls (daly_interval,
//     expected_lost_work, ... from checkpoint.hpp), with the Eq. 9 sphere
//     terms memoized in a per-worker SphereTermCache warmed during
//     staging. Identical inputs through identical functions: results are
//     bitwise identical to a scalar predict() loop, for any worker count
//     and any batch order. Golden exports use this mode.
//
//   EvalMode::kFast — the transcendental chain is evaluated through the
//     vectorized vk:: kernels (kernels.hpp) over contiguous arrays, with
//     pow-by-squaring sphere terms. Each kernel is within a few ulp of
//     correctly rounded; end-to-end divergence on the bench grids stays
//     below 5e-4 relative per output field, with the worst case
//     concentrated where Eq. 13's 1 - λω denominator approaches its pole
//     and the model itself diverges (away from the pole the grids agree
//     to ~1e-11; points where both modes exceed 1e15 in magnitude or both
//     go nonfinite count as agreement — test_planner.cpp and bench_engine
//     pin the bound). Like kExact it is deterministic across hosts and
//     worker counts; it is simply not bit-identical to libm-based
//     predict(). The serving/bench hot path.
//
// Large batches split across a lazily started persistent worker pool
// (hardware_concurrency - 1 threads); the serial/parallel crossover is
// measured once at first use (see parallel_threshold()). Each worker owns
// its output slot range and its own caches, so the merge is the identity
// and results never depend on scheduling.
//
// NOTE (migration): evaluate_batch is the model-layer engine. New code
// outside src/model/ should go through the stable public facade
// `redcr::Planner` (include/redcr/planner.hpp), which adds plan caching
// and observability on top of this API; direct model::evaluate_batch use
// outside src/model/ is deprecated. See DESIGN.md §12.
#pragma once

#include <span>
#include <vector>

#include "model/combined.hpp"

namespace redcr::model {

/// One grid point: a full model configuration plus the redundancy degree.
struct BatchPoint {
  CombinedConfig config;
  double r = 1.0;
};

/// How evaluate_batch finishes the staged points.
enum class EvalMode {
  kExact,  ///< bitwise-identical to scalar predict() (default)
  kFast,   ///< vectorized vk:: kernels, documented ulp bound, several-fold
           ///< faster than the scalar loop (bench-guarded)
};

struct BatchOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int jobs = 0;
  /// Evaluate predict_simplified() (Section 6) instead of predict().
  bool simplified = false;
  /// Exact (bitwise) or fast (ulp-bounded) finishing pipeline.
  EvalMode mode = EvalMode::kExact;
};

/// Evaluates every point; out[i] corresponds to points[i].
[[nodiscard]] std::vector<Prediction> evaluate_batch(
    std::span<const BatchPoint> points, const BatchOptions& options = {});

/// One configuration swept over several redundancy degrees — the
/// sweep-shaped query Planner::plan answers. With EvalMode::kFast this
/// takes a dedicated staging path (the shared config broadcasts instead
/// of being re-read per point) that is bitwise-identical per point to the
/// BatchPoint-span entry, just faster.
[[nodiscard]] std::vector<Prediction> evaluate_batch(
    const CombinedConfig& config, std::span<const double> degrees,
    const BatchOptions& options = {});

/// Zero-allocation variant: writes out[i] for points[i] into a
/// caller-owned buffer. Requires out.size() == points.size(). This is the
/// serving hot path — reusing the output buffer across calls avoids the
/// result-vector construction, which costs as much as several model
/// evaluations per point at kFast speed.
void evaluate_batch_into(std::span<const BatchPoint> points,
                         std::span<Prediction> out,
                         const BatchOptions& options = {});

/// Zero-allocation sweep: evaluates `config` at degrees[i] into out[i].
/// Requires out.size() == degrees.size().
void evaluate_batch_into(const CombinedConfig& config,
                         std::span<const double> degrees,
                         std::span<Prediction> out,
                         const BatchOptions& options = {});

/// The self-calibrated serial/parallel crossover: batches smaller than
/// this stay on the calling thread. Measured once at first use by timing
/// a pool dispatch against per-point evaluation cost; SIZE_MAX on hosts
/// with a single hardware thread (parallelism can never win there).
[[nodiscard]] std::size_t parallel_threshold();

}  // namespace redcr::model
