// Thread-pooled batch evaluation of the combined model.
//
// The paper's headline studies evaluate predict() over large (config, r)
// grids — Figs. 13-14 sweep process counts per degree, Tables 4/5 sweep
// r × MTBF. Point evaluations are independent and dominated by the Eq. 9
// sphere-reliability pow/log pair, which repeats across every grid point
// sharing (pf, degree). evaluate_batch() exploits both structures:
//
//   pass 1 (serial)   — warm a SphereTermCache with every (pf, degree)
//                       term the batch needs; each unique term is computed
//                       exactly once;
//   pass 2 (parallel) — evaluate the points over a worker pool against the
//                       now read-only cache, each worker writing its own
//                       pre-assigned output slots.
//
// Determinism: results are bitwise identical to calling predict() in a
// loop, for any worker count — the cache stores results of the exact same
// expressions the scalar path evaluates, and output order is slot-indexed.
#pragma once

#include <span>
#include <vector>

#include "model/combined.hpp"

namespace redcr::model {

/// One grid point: a full model configuration plus the redundancy degree.
struct BatchPoint {
  CombinedConfig config;
  double r = 1.0;
};

struct BatchOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  int jobs = 0;
  /// Evaluate predict_simplified() (Section 6) instead of predict().
  bool simplified = false;
};

/// Evaluates every point; out[i] corresponds to points[i].
[[nodiscard]] std::vector<Prediction> evaluate_batch(
    std::span<const BatchPoint> points, const BatchOptions& options = {});

/// Convenience: one configuration swept over several redundancy degrees.
[[nodiscard]] std::vector<Prediction> evaluate_batch(
    const CombinedConfig& config, std::span<const double> degrees,
    const BatchOptions& options = {});

}  // namespace redcr::model
