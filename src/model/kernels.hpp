// Batched transcendental kernels for the model's fast evaluation path.
//
// vk::exp / vk::expm1 / vk::log evaluate whole contiguous arrays at once
// so the compiler can vectorize the polynomial pipeline (AVX2/AVX-512 when
// the host supports them, plain SSE2 otherwise). Three properties the
// batch evaluator relies on:
//
//   1. Determinism across ISAs. The kernels are compiled with
//      -ffp-contract=off and use only +, -, *, /, sqrt and bit operations,
//      each of which is IEEE-754 correctly rounded per element. Every
//      dispatch target therefore produces bitwise-identical output — a
//      result computed on an AVX-512 host reproduces on a baseline x86-64
//      host byte for byte, keeping golden exports machine-stable.
//   2. Accuracy (documented ULP bound). Argument reduction against hi/lo
//      constant splits plus degree-13 Taylor (exp/expm1) and degree-10
//      atanh (log) polynomials evaluated in Estrin form keep the error
//      within 4 ulp of a correctly rounded result over the full double
//      range (observed maxima: exp 2, expm1 4, log 4; truncation terms are
//      < 0.2 ulp, the rest is rounding accumulation — expm1 switches to
//      the shifted series below |x| <= 0.35 so small arguments keep full
//      relative precision). test_planner.cpp pins an end-to-end bound.
//   3. Full-domain totality. +-inf, NaN, zero/negative (log), overflow and
//      subnormal underflow all produce the same values the libm
//      counterparts would (modulo the <= 4 ulp bound), so callers need no
//      pre-masking.
//
// These kernels back EvalMode::kFast only. EvalMode::kExact keeps calling
// libm through the exact scalar pipeline and stays bitwise-identical to
// model::predict().
#pragma once

#include <cstddef>

namespace redcr::model::vk {

/// out[i] = e^{x[i]} for i in [0, n). `out` must not alias `x`.
void exp(const double* x, double* out, std::size_t n) noexcept;

/// out[i] = e^{x[i]} - 1 with full relative precision for small |x|.
/// `out` must not alias `x`.
void expm1(const double* x, double* out, std::size_t n) noexcept;

/// out[i] = ln(x[i]). Totality matches std::log: log(0) = -inf,
/// log(negative) = NaN, log(+inf) = +inf. `out` must not alias `x`.
void log(const double* x, double* out, std::size_t n) noexcept;

/// Name of the dispatch target selected for this host: "avx512", "avx2"
/// or "x86-64" (diagnostics only; results are identical on all three).
[[nodiscard]] const char* active_isa() noexcept;

}  // namespace redcr::model::vk
