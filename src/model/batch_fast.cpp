// EvalMode::kFast: the vectorized finishing pipeline behind evaluate_batch
// (see batch.hpp for the contract). The chain of Eqs. 1, 5-10, 12-15 is
// restructured into structure-of-arrays passes over tiles of 1024 points:
//
//   A  extract   AoS BatchPoint fields -> SoA arrays (scalar; strided)
//   B  partition Eqs. 5-8 + pf + pf^degree by squaring + sphere survival
//   L  vk::log   the Eq. 9 sphere terms ln(1 - pf^d), both degrees
//   C  reduce    log R_sys, lambda_sys, Theta_sys (Eqs. 9-10)
//   D  interval  Daly/Young/fixed delta (Eq. 15) + expm1 arguments
//   E  vk::expm1 the Eq. 12 exponentials
//   F  lost work Eq. 12 + the Eq. 13 exp argument
//   G  vk::exp   reliability e^{ln R_sys} and the Eq. 13 survival factor
//   H  finish    Eqs. 13-14 + AoS writeback
//
// Every loop is branch-free (ternary selects) so it auto-vectorizes; the
// whole TU is compiled with -O3 -ffp-contract=off and the pipeline is
// multiversioned over avx512/avx2/base exactly like kernels.cpp, so kFast
// results are bitwise-identical across hosts and ISA levels — just not to
// the libm-based scalar predict() (documented ulp bound in kernels.hpp;
// end-to-end bound pinned by test_planner.cpp).
//
// Guard semantics mirror the scalar functions case by case: each select
// below cites the guard in checkpoint.cpp/redundancy.cpp it reproduces.
#include "model/batch_fast.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

#include "model/kernels.hpp"

namespace redcr::model::detail {

namespace {

constexpr std::size_t kTile = 1024;
constexpr double kInf = std::numeric_limits<double>::infinity();
// "Is +inf" test that vectorizes: every finite double is below this.
constexpr double kFiniteMax = 1.7976931348623157e308;
constexpr double kMaxQuarter = std::numeric_limits<double>::max() / 4.0;

struct Scratch {
  std::array<double, kTile> r, trd, nd, pf;
  std::array<double, kTile> fdd, cdd, nfd, ncd, totd;
  std::array<double, kTile> cc, rc, fxv, m_fixed, m_young, m_aspub;
  std::array<double, kTile> sf_in, sc_in, lt_f, lt_c;
  std::array<double, kTile> logr, rate, mtbf;
  std::array<double, kTile> delta, a1, a2, e1, e2;
  std::array<double, kTile> lost, a3, relv, surv;
};

Scratch& scratch() {
  thread_local std::unique_ptr<Scratch> s = std::make_unique<Scratch>();
  return *s;
}

/// Grid mode's per-config scalars. The sweep shares one config, so these
/// seven values never vary within a call: keeping them in registers
/// instead of broadcast-filled scratch arrays removes seven stores per
/// point from staging and the matching reloads downstream. Unused (zero)
/// in AoS mode, where they genuinely vary per point and live in Scratch.
struct Bcast {
  double bt = 0, al = 0, nd = 0, th_n = 0;
  double cc = 0, rc = 0, fxv = 0, mfx = 0, myg = 0, map = 0;
};

/// One tile (m <= kTile points). Forced inline into the ISA-targeted
/// wrappers below so the plain double loops vectorize per target.
///
/// kGrid selects the staging source: false reads AoS BatchPoints (pts),
/// true broadcasts one shared config and reads only degs[i] (the
/// sweep-shaped entry). Everything past stage A is shared, and stage A
/// computes identical values either way (same expressions, same operation
/// order), so the two entries are bitwise-interchangeable per point.
template <bool kGrid>
__attribute__((always_inline)) inline void tile_body(const BatchPoint* pts,
                                                     const Bcast& bc,
                                                     const double* degs,
                                                     Prediction* out,
                                                     std::size_t m,
                                                     bool simplified,
                                                     bool exact_exp,
                                                     Scratch& s) {
  // A: extract. AoS mode: strided scalar reads; also resolves pf (Eqs.
  // 2-3) — the kExactExponential exp() is per-point but that model is
  // rare on hot paths, and the linearized form is two flops. Grid mode:
  // broadcast stores + a vectorized Eq. 1, with std::clamp spelled as the
  // equivalent selects (identical values) so the loop vectorizes.
  double max_r = 1.0;
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  bool staged_b = false;
  if constexpr (kGrid) {
    const double bt = bc.bt;
    const double al = bc.al;
    const double th_n = bc.th_n;
    const double n = bc.nd;
    // Pure max reduction on its own: folding it into the staging loop's
    // store stream makes GCC give up on vectorizing either.
    for (std::size_t i = 0; i < m; ++i)
      max_r = degs[i] > max_r ? degs[i] : max_r;
    if (!exact_exp) {
      // Hot path: stage A fused with stage B below — same expressions in
      // the same order, with r/t/pf flowing through registers instead of
      // a scratch round-trip. The standalone B loop is skipped.
      staged_b = true;
      for (std::size_t i = 0; i < m; ++i) {
        const double r = degs[i];
        const double t = (1.0 - al) * bt + al * bt * r;  // Eq. 1
        s.trd[i] = t;
        const double v = t / th_n;  // Eq. 3, clamped like std::clamp
        const double x = v < 0.0 ? 0.0 : 1.0 < v ? 1.0 : v;
        s.pf[i] = x;
        const double fd = __builtin_floor(r);
        const double cd = __builtin_ceil(r);
        double nf = __builtin_floor((cd - r) * n);  // Eq. 6
        nf = nf > n ? n : nf;
        const double nc = n - nf;  // Eq. 7
        s.fdd[i] = fd;
        s.cdd[i] = cd;
        s.nfd[i] = nf;
        s.ncd[i] = nc;
        s.totd[i] = nc * cd + nf * fd;  // Eq. 8
        double pw = x;
        pw *= fd >= 2.0 ? x : 1.0;
        pw *= fd >= 3.0 ? x : 1.0;
        pw *= fd >= 4.0 ? x : 1.0;
        pw = fd > 4.0 ? qnan : pw;
        const double pwc = cd == fd ? pw : pw * x;
        s.sf_in[i] = 1.0 - pw;
        s.sc_in[i] = 1.0 - pwc;
      }
    } else {
      for (std::size_t i = 0; i < m; ++i)
        s.trd[i] = (1.0 - al) * bt + al * bt * degs[i];  // Eq. 1
      // Eq. 2, libm exp to match the AoS staging bitwise
      for (std::size_t i = 0; i < m; ++i)
        s.pf[i] = 1.0 - std::exp(-s.trd[i] / th_n);
    }
  } else {
    for (std::size_t i = 0; i < m; ++i) {
      const BatchPoint& p = pts[i];
      const AppParams& app = p.config.app;
      const double bt = app.base_time;
      const double al = app.comm_fraction;
      const double t = (1.0 - al) * bt + al * bt * p.r;  // Eq. 1
      s.r[i] = p.r;
      max_r = p.r > max_r ? p.r : max_r;
      s.trd[i] = t;
      s.nd[i] = static_cast<double>(app.num_procs);
      const double th_n = p.config.machine.node_mtbf;
      s.pf[i] = p.config.failure_model == NodeFailureModel::kLinearized
                    ? std::clamp(t / th_n, 0.0, 1.0)
                    : 1.0 - std::exp(-t / th_n);
      s.cc[i] = p.config.machine.checkpoint_cost;
      s.rc[i] = p.config.machine.restart_cost;
      s.m_fixed[i] = p.config.fixed_interval ? 1.0 : 0.0;
      s.fxv[i] = p.config.fixed_interval ? *p.config.fixed_interval : 0.0;
      s.m_young[i] = p.config.use_young_interval ? 1.0 : 0.0;
      s.m_aspub[i] =
          p.config.restart_model == RestartModel::kAsPublished ? 1.0 : 0.0;
    }
  }

  // B: partition (Eqs. 5-8) and sphere survival 1 - pf^degree (Eq. 4).
  // Degrees are tiny integers; pf^d comes from a select over pre-squared
  // powers (degrees above 4 are fixed up scalar below — qnan marks them).
  // Skipped when the fused grid staging above already ran it.
  if (!staged_b) for (std::size_t i = 0; i < m; ++i) {
    const double r = kGrid ? degs[i] : s.r[i];
    const double fd = __builtin_floor(r);
    const double cd = __builtin_ceil(r);
    const double n = kGrid ? bc.nd : s.nd[i];
    double nf = __builtin_floor((cd - r) * n);  // Eq. 6
    nf = nf > n ? n : nf;
    const double nc = n - nf;  // Eq. 7
    s.fdd[i] = fd;
    s.cdd[i] = cd;
    s.nfd[i] = nf;
    s.ncd[i] = nc;
    s.totd[i] = nc * cd + nf * fd;  // Eq. 8
    // pf^fd by chained multiplicative selects (a multi-arm ternary would
    // be control flow and block vectorization): multiply in one extra
    // factor of x per degree step actually present.
    const double x = s.pf[i];
    double pw = x;
    pw *= fd >= 2.0 ? x : 1.0;
    pw *= fd >= 3.0 ? x : 1.0;
    pw *= fd >= 4.0 ? x : 1.0;
    pw = fd > 4.0 ? qnan : pw;
    const double pwc = cd == fd ? pw : pw * x;
    s.sf_in[i] = 1.0 - pw;
    s.sc_in[i] = 1.0 - pwc;
  }
  if (max_r >= 5.0) {  // rare: degrees above 4 take the scalar pow path
    for (std::size_t i = 0; i < m; ++i) {
      if (s.fdd[i] > 4.0) {
        const double pw = std::pow(s.pf[i], s.fdd[i]);
        const double pwc =
            s.cdd[i] == s.fdd[i] ? pw : std::pow(s.pf[i], s.cdd[i]);
        s.sf_in[i] = 1.0 - pw;
        s.sc_in[i] = 1.0 - pwc;
      }
    }
  }

  // L: the Eq. 9 sphere terms. vk::log(0) = -inf reproduces the
  // log_sphere_survival() certain-failure convention directly.
  vk::log(s.sf_in.data(), s.lt_f.data(), m);
  vk::log(s.sc_in.data(), s.lt_c.data(), m);

  // C: ln R_sys across spheres (Eq. 9) and the Eq. 10 rate/MTBF. Empty
  // sets contribute exactly 0 (the selects avoid 0 * -inf = NaN); a
  // certain-failure term drives ln R_sys to -inf and the rate to +inf,
  // matching the system_failure() early-out. The full model fuses stage D
  // (Eq. 15 interval + the Eq. 12 exponents) into the same pass: theta
  // flows straight from the Eq. 10 division into the Daly guard chain —
  // infinite MTBF -> max/4 stand-in, c >= 2*theta -> theta, otherwise
  // Eq. 15; Young mode uses sqrt(2c*theta) unguarded like
  // young_interval(); a fixed interval overrides both.
  if (simplified) {
    for (std::size_t i = 0; i < m; ++i) {
      const double tf = s.nfd[i] > 0.0 ? s.nfd[i] * s.lt_f[i] : 0.0;
      const double tc = s.ncd[i] > 0.0 ? s.ncd[i] * s.lt_c[i] : 0.0;
      const double lr = tf + tc;
      const double ra = -lr / s.trd[i];
      s.logr[i] = lr;
      s.rate[i] = ra;
      s.mtbf[i] = ra == 0.0 ? kInf : 1.0 / ra;
    }
    // Section 6: Young interval, no rework term.
    for (std::size_t i = 0; i < m; ++i)
      s.delta[i] =
          __builtin_sqrt(2.0 * (kGrid ? bc.cc : s.cc[i]) * s.mtbf[i]);
    vk::exp(s.logr.data(), s.relv.data(), m);
    for (std::size_t i = 0; i < m; ++i) {
      Prediction& o = out[i];
      const double ra = s.rate[i];
      const bool dead = ra == kInf;
      const double t = s.trd[i];
      const double q = t / s.delta[i];
      const double tt = t + q * (kGrid ? bc.cc : s.cc[i]) +
                        t * ra * (kGrid ? bc.rc : s.rc[i]);
      o.r = kGrid ? degs[i] : s.r[i];
      o.redundant_time = t;
      o.reliability = s.relv[i];
      o.failure_rate = ra;
      o.system_mtbf = s.mtbf[i];
      o.interval = dead ? 0.0 : s.delta[i];
      o.lost_work = 0.0;
      o.restart_rework = dead ? 0.0 : kGrid ? bc.rc : s.rc[i];
      o.total_time = dead ? kInf : tt;
      o.expected_checkpoints = dead ? 0.0 : q;
      o.expected_failures = dead ? 0.0 : t * ra;
      o.total_procs = static_cast<std::size_t>(s.totd[i]);
    }
    return;
  }

  // C+D fused (full model).
  for (std::size_t i = 0; i < m; ++i) {
    const double tf = s.nfd[i] > 0.0 ? s.nfd[i] * s.lt_f[i] : 0.0;
    const double tc = s.ncd[i] > 0.0 ? s.ncd[i] * s.lt_c[i] : 0.0;
    const double lr = tf + tc;
    const double ra = -lr / s.trd[i];
    const double th = ra == 0.0 ? kInf : 1.0 / ra;
    s.logr[i] = lr;
    s.rate[i] = ra;
    s.mtbf[i] = th;
    const double c = kGrid ? bc.cc : s.cc[i];
    const double inv_th = 1.0 / th;  // one division feeds all three ratios
    const double sq = __builtin_sqrt(2.0 * c * th);
    const double ratio = 0.5 * c * inv_th;
    double daly = sq * (1.0 + __builtin_sqrt(ratio) * (1.0 / 3.0) +
                        ratio * (1.0 / 9.0)) -
                  c;
    daly = c >= 2.0 * th ? th : daly;
    daly = th > kFiniteMax ? kMaxQuarter : daly;
    double d = (kGrid ? bc.myg : s.m_young[i]) != 0.0 ? sq : daly;
    d = (kGrid ? bc.mfx : s.m_fixed[i]) != 0.0 ? (kGrid ? bc.fxv : s.fxv[i])
                                               : d;
    s.delta[i] = d;
    s.a1[i] = -(d + c) * inv_th;
    s.a2[i] = -d * inv_th;
  }

  // E: the two Eq. 12 exponentials.
  vk::expm1(s.a1.data(), s.e1.data(), m);
  vk::expm1(s.a2.data(), s.e2.data(), m);

  // F: expected lost work (Eq. 12). denom <= 0 selects the series-limit
  // branch of expected_lost_work() (Theta >> delta_c beyond double
  // precision, including the infinite-MTBF lanes); e^{-delta_c/theta} is
  // recovered as e1 + 1 to save a kernel pass.
  for (std::size_t i = 0; i < m; ++i) {
    const double th = s.mtbf[i];
    const double c = kGrid ? bc.cc : s.cc[i];
    const double d = s.delta[i];
    const double dc = d + c;
    const double denom = th > kFiniteMax ? 0.0 : -s.e1[i];
    const double limit = d * (d / 2.0 + c) / dc;
    const double numer = -th * s.e2[i] - d * (s.e1[i] + 1.0);
    const double lw = denom <= 0.0 ? limit : numer / denom;
    s.lost[i] = lw;
    s.a3[i] = -((kGrid ? bc.rc : s.rc[i]) + lw) / th;
  }

  // G: reliability e^{ln R_sys} (underflows to 0 exactly like the scalar
  // path) and the Eq. 13 survival probability.
  vk::exp(s.logr.data(), s.relv.data(), m);
  vk::exp(s.a3.data(), s.surv.data(), m);

  // H: restart+rework (Eq. 13), total time (Eq. 14), writeback. Dead
  // lanes (rate = +inf) reproduce predict()'s early return: the
  // downstream fields keep their default zeros and T_total is +inf.
  for (std::size_t i = 0; i < m; ++i) {
    Prediction& o = out[i];
    const double th = s.mtbf[i];
    const double x = (kGrid ? bc.rc : s.rc[i]) + s.lost[i];
    const double sv = s.surv[i];
    const double trunc = th - sv * (x + th);
    double w = (kGrid ? bc.map : s.m_aspub[i]) != 0.0
                   ? (1.0 - sv) * trunc + sv * x
                   : trunc + sv * x;
    w = th > kFiniteMax ? x : w;  // restart_rework_time() infinite-MTBF guard
    const double ra = s.rate[i];
    const double d = s.delta[i];
    const double t = s.trd[i];
    const double den2 = 1.0 - ra * w;
    const double q = t / d;  // expected checkpoints, reused in T_total
    double tt = (t + q * (kGrid ? bc.cc : s.cc[i])) / den2;
    tt = den2 <= 0.0 ? kInf : tt;  // total_time() no-progress guard
    const bool dead = ra == kInf;
    o.r = kGrid ? degs[i] : s.r[i];
    o.redundant_time = t;
    o.reliability = s.relv[i];
    o.failure_rate = ra;
    o.system_mtbf = th;
    o.interval = dead ? 0.0 : d;
    o.lost_work = dead ? 0.0 : s.lost[i];
    o.restart_rework = dead ? 0.0 : w;
    o.total_time = dead ? kInf : tt;
    o.expected_checkpoints = dead ? 0.0 : q;
    o.expected_failures = dead || tt >= kInf ? (dead ? 0.0 : kInf)
                                             : tt * ra;
    o.total_procs = static_cast<std::size_t>(s.totd[i]);
  }
}

/// Flattens the shared config once per call (grid mode); zeros in AoS mode.
Bcast make_bcast(const CombinedConfig* cfg) {
  Bcast bc;
  if (cfg == nullptr) return bc;
  bc.bt = cfg->app.base_time;
  bc.al = cfg->app.comm_fraction;
  bc.nd = static_cast<double>(cfg->app.num_procs);
  bc.th_n = cfg->machine.node_mtbf;
  bc.cc = cfg->machine.checkpoint_cost;
  bc.rc = cfg->machine.restart_cost;
  bc.mfx = cfg->fixed_interval ? 1.0 : 0.0;
  bc.fxv = cfg->fixed_interval ? *cfg->fixed_interval : 0.0;
  bc.myg = cfg->use_young_interval ? 1.0 : 0.0;
  bc.map = cfg->restart_model == RestartModel::kAsPublished ? 1.0 : 0.0;
  return bc;
}

template <bool kGrid>
__attribute__((always_inline)) inline void run(const BatchPoint* pts,
                                               const CombinedConfig* cfg,
                                               const double* degs,
                                               Prediction* out, std::size_t n,
                                               bool simplified) {
  Scratch& s = scratch();
  const Bcast bc = make_bcast(kGrid ? cfg : nullptr);
  const bool exact_exp =
      kGrid && cfg->failure_model == NodeFailureModel::kExactExponential;
  for (std::size_t base = 0; base < n; base += kTile) {
    const std::size_t m = std::min(kTile, n - base);
    tile_body<kGrid>(kGrid ? nullptr : pts + base, bc,
                     kGrid ? degs + base : nullptr, out + base, m, simplified,
                     exact_exp, s);
  }
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) void run_avx512(
    const BatchPoint* pts, Prediction* out, std::size_t n, bool simplified) {
  run<false>(pts, nullptr, nullptr, out, n, simplified);
}
__attribute__((target("avx2"))) void run_avx2(const BatchPoint* pts,
                                              Prediction* out, std::size_t n,
                                              bool simplified) {
  run<false>(pts, nullptr, nullptr, out, n, simplified);
}
void run_base(const BatchPoint* pts, Prediction* out, std::size_t n,
              bool simplified) {
  run<false>(pts, nullptr, nullptr, out, n, simplified);
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) void run_grid_avx512(
    const CombinedConfig& cfg, const double* degs, Prediction* out,
    std::size_t n, bool simplified) {
  run<true>(nullptr, &cfg, degs, out, n, simplified);
}
__attribute__((target("avx2"))) void run_grid_avx2(const CombinedConfig& cfg,
                                                   const double* degs,
                                                   Prediction* out,
                                                   std::size_t n,
                                                   bool simplified) {
  run<true>(nullptr, &cfg, degs, out, n, simplified);
}
void run_grid_base(const CombinedConfig& cfg, const double* degs,
                   Prediction* out, std::size_t n, bool simplified) {
  run<true>(nullptr, &cfg, degs, out, n, simplified);
}

enum class Isa { kBase, kAvx2, kAvx512 };

Isa active() noexcept {
  static const Isa isa = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl"))
      return Isa::kAvx512;
    if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
    return Isa::kBase;
  }();
  return isa;
}

}  // namespace

void evaluate_fast(const BatchPoint* points, Prediction* out, std::size_t n,
                   bool simplified) {
  switch (active()) {
    case Isa::kAvx512: run_avx512(points, out, n, simplified); return;
    case Isa::kAvx2: run_avx2(points, out, n, simplified); return;
    case Isa::kBase: run_base(points, out, n, simplified); return;
  }
}

void evaluate_fast_grid(const CombinedConfig& config, const double* degrees,
                        Prediction* out, std::size_t n, bool simplified) {
  switch (active()) {
    case Isa::kAvx512:
      run_grid_avx512(config, degrees, out, n, simplified);
      return;
    case Isa::kAvx2:
      run_grid_avx2(config, degrees, out, n, simplified);
      return;
    case Isa::kBase:
      run_grid_base(config, degrees, out, n, simplified);
      return;
  }
}

}  // namespace redcr::model::detail
