#include "model/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <stop_token>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "model/batch_fast.hpp"
#include "model/checkpoint.hpp"

namespace redcr::model {

namespace {

// ---------------------------------------------------------------------------
// Worker pool
//
// The old implementation spawned std::threads per evaluate_batch call and
// serialized a full cache warm-up pass before any worker started; on top
// of that the spawn cost (~100us/thread) dwarfed the per-range work for
// realistic grids, which is how the bench ended up at 0.948x vs scalar.
// This pool starts hardware_concurrency-1 threads once, lazily, and hands
// out contiguous part indices through an atomic counter; the caller works
// too, so `workers() + 1` ranges run concurrently. Parts own disjoint
// output ranges, so no synchronization (and no false sharing beyond the
// range boundaries) exists on the result buffer.
// ---------------------------------------------------------------------------
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  /// Threads the pool can contribute in addition to the caller.
  int workers() {
    ensure_started();
    return static_cast<int>(threads_.size());
  }

  /// Runs fn(part) for part in [0, parts). The caller participates; the
  /// call returns when every part finished. Serializes concurrent
  /// submitters (evaluate_batch stays thread-safe for Planner). The first
  /// exception from any part is rethrown on the caller.
  void run(int parts, const std::function<void(int)>& fn) {
    ensure_started();
    if (threads_.empty() || parts <= 1) {
      for (int part = 0; part < parts; ++part) fn(part);
      return;
    }
    const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      task_ = &fn;
      next_part_.store(0, std::memory_order_relaxed);
      total_parts_ = parts;
      done_parts_ = 0;
      first_error_ = nullptr;
      ++generation_;
    }
    wake_.notify_all();
    work(&fn, parts);  // caller chews parts alongside the pool
    // Wait until every part completed AND every pool thread that joined
    // this task left the part-grab loop — a straggler that registered
    // right before completion must not touch next_part_ after we reset it
    // for the next batch.
    std::unique_lock<std::mutex> lock(mutex_);
    finished_.wait(lock,
                   [&] { return done_parts_ == total_parts_ && joined_ == 0; });
    task_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  WorkerPool() = default;

  void ensure_started() {
    std::call_once(started_, [this] {
      const unsigned hw = std::thread::hardware_concurrency();
      const unsigned extra = hw > 1 ? hw - 1 : 0;
      threads_.reserve(extra);
      for (unsigned i = 0; i < extra; ++i)
        threads_.emplace_back(
            [this](std::stop_token stop) { worker_loop(stop); });
    });
  }

  void worker_loop(std::stop_token stop) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* task = nullptr;
      int parts = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, stop, [&] { return generation_ != seen; });
        if (stop.stop_requested()) return;
        seen = generation_;
        task = task_;
        parts = total_parts_;
        // Register while the task is provably still current (task_ is
        // nulled under this mutex when run() returns).
        if (task != nullptr) ++joined_;
      }
      if (task != nullptr) {
        work(task, parts);
        const std::lock_guard<std::mutex> lock(mutex_);
        if (--joined_ == 0 && done_parts_ == total_parts_)
          finished_.notify_all();
      }
    }
  }

  void work(const std::function<void(int)>* task, int parts) {
    for (;;) {
      const int part = next_part_.fetch_add(1, std::memory_order_relaxed);
      if (part >= parts) return;
      try {
        (*task)(part);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(mutex_);
      if (++done_parts_ == total_parts_ && joined_ == 0)
        finished_.notify_all();
    }
  }

  std::once_flag started_;
  std::vector<std::jthread> threads_;
  std::mutex submit_mutex_;  // one batch through the pool at a time
  std::mutex mutex_;
  std::condition_variable_any wake_;
  std::condition_variable finished_;
  const std::function<void(int)>* task_ = nullptr;
  std::atomic<int> next_part_{0};
  int total_parts_ = 0;
  int done_parts_ = 0;
  int joined_ = 0;  // pool threads currently inside work() for this task
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
};

// ---------------------------------------------------------------------------
// Exact pipeline
//
// Stages each point once (partition, t_Red, pf, the Eq. 9 sphere terms via
// a per-worker SphereTermCache warmed in place) and finishes it through
// the very library functions predict() calls. Identical argument values
// through identical functions yield bitwise-identical Prediction fields,
// so this path is interchangeable with a scalar predict() loop — while
// skipping predict()'s duplicate partition/pf recomputation and the
// global serial warm pass of the old implementation. The cache is
// per-worker: warming happens inline with no cross-thread sharing, and
// duplicated unique terms across workers cost microseconds total.
// ---------------------------------------------------------------------------
void evaluate_exact(const BatchPoint* pts, Prediction* out, std::size_t n,
                    bool simplified, SphereTermCache& cache) {
  for (std::size_t i = 0; i < n; ++i) {
    const BatchPoint& point = pts[i];
    const CombinedConfig& config = point.config;
    assert(point.r >= 1.0);
    Prediction p;
    p.r = point.r;
    const Partition part = partition_processes(config.app.num_procs, point.r);
    p.total_procs = part.total_procs;
    p.redundant_time = redundant_time(config.app, point.r);

    // Eqs. 9-10 from the staged partition: the same accumulation order
    // (floor set first) and early-outs as log_system_reliability().
    const double pf = node_failure_probability(
        p.redundant_time, config.machine.node_mtbf, config.failure_model);
    double log_r = 0.0;
    if (part.n_floor_set > 0) {
      const double term = cache.warm(pf, part.floor_degree);
      log_r = std::isinf(term)
                  ? -std::numeric_limits<double>::infinity()
                  : log_r + static_cast<double>(part.n_floor_set) * term;
    }
    if (part.n_ceil_set > 0 && !std::isinf(log_r)) {
      const double term = cache.warm(pf, part.ceil_degree);
      log_r = std::isinf(term)
                  ? -std::numeric_limits<double>::infinity()
                  : log_r + static_cast<double>(part.n_ceil_set) * term;
    }
    p.reliability = std::exp(log_r);
    if (!std::isfinite(log_r)) {
      p.failure_rate = std::numeric_limits<double>::infinity();
      p.system_mtbf = 0.0;
      p.total_time = std::numeric_limits<double>::infinity();
      out[i] = p;
      continue;
    }
    p.failure_rate = -log_r / p.redundant_time;
    p.system_mtbf = p.failure_rate == 0.0
                        ? std::numeric_limits<double>::infinity()
                        : 1.0 / p.failure_rate;

    const double c = config.machine.checkpoint_cost;
    if (simplified) {
      p.interval = young_interval(c, p.system_mtbf);
      p.lost_work = 0.0;
      p.restart_rework = config.machine.restart_cost;
      p.total_time = p.redundant_time + (p.redundant_time / p.interval) * c +
                     p.redundant_time * p.failure_rate *
                         config.machine.restart_cost;
      p.expected_checkpoints = p.redundant_time / p.interval;
      p.expected_failures = p.redundant_time * p.failure_rate;
    } else {
      p.interval = config.fixed_interval ? *config.fixed_interval
                   : config.use_young_interval
                       ? young_interval(c, p.system_mtbf)
                       : daly_interval(c, p.system_mtbf);
      p.lost_work = expected_lost_work(p.interval, c, p.system_mtbf);
      p.restart_rework =
          restart_rework_time(config.machine.restart_cost, p.lost_work,
                              p.system_mtbf, config.restart_model);
      p.total_time = total_time(p.redundant_time, c, p.interval,
                                p.failure_rate, p.restart_rework);
      p.expected_checkpoints = p.redundant_time / p.interval;
      p.expected_failures = std::isfinite(p.total_time)
                                ? p.total_time * p.failure_rate
                                : std::numeric_limits<double>::infinity();
    }
    out[i] = p;
  }
}

void evaluate_range(const BatchPoint* pts, Prediction* out, std::size_t n,
                    const BatchOptions& options) {
  if (options.mode == EvalMode::kFast) {
    detail::evaluate_fast(pts, out, n, options.simplified);
  } else {
    SphereTermCache cache;
    evaluate_exact(pts, out, n, options.simplified, cache);
  }
}

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Measures the serial/parallel crossover once: the point count at which
/// a pool round-trip costs under ~10% of the evaluation work it unlocks.
std::size_t calibrate_threshold() {
  WorkerPool& pool = WorkerPool::instance();
  if (pool.workers() == 0) return std::numeric_limits<std::size_t>::max();

  using clock = std::chrono::steady_clock;
  // Per-point cost of the exact pipeline on a synthetic config.
  constexpr std::size_t kProbe = 512;
  std::vector<BatchPoint> probe(kProbe);
  for (std::size_t i = 0; i < kProbe; ++i) {
    probe[i].config.app.num_procs = 1000 + i;
    probe[i].r = 1.0 + static_cast<double>(i % 200) * 0.01;
  }
  std::vector<Prediction> sink(kProbe);
  SphereTermCache cache;
  const auto t0 = clock::now();
  evaluate_exact(probe.data(), sink.data(), kProbe, false, cache);
  const double per_point =
      std::max(std::chrono::duration<double>(clock::now() - t0).count() /
                   static_cast<double>(kProbe),
               1e-9);

  // Pool dispatch round-trip (median of a few empty runs).
  const int parts = pool.workers() + 1;
  double dispatch = std::numeric_limits<double>::max();
  for (int rep = 0; rep < 5; ++rep) {
    const auto d0 = clock::now();
    pool.run(parts, [](int) {});
    dispatch = std::min(
        dispatch, std::chrono::duration<double>(clock::now() - d0).count());
  }
  const auto threshold =
      static_cast<std::size_t>(dispatch / (0.10 * per_point));
  return std::clamp<std::size_t>(threshold, 1024, std::size_t{1} << 22);
}

// Static slot partitioning: part w owns [w*n/jobs, (w+1)*n/jobs) and
// writes only its own output slots. Every part stages and finishes
// independently (own scratch, own sphere cache), and both pipelines are
// pure per-point functions, so results are bitwise independent of the
// worker count and of which thread ran which part. Serial below the
// calibrated crossover.
template <class Fn>
void for_ranges(std::size_t n, int jobs_option, Fn&& fn) {
  const int jobs = std::clamp<int>(
      resolve_jobs(jobs_option), 1,
      static_cast<int>(std::min<std::size_t>(
          n, static_cast<std::size_t>(std::numeric_limits<int>::max()))));
  if (jobs == 1 || n < parallel_threshold()) {
    fn(std::size_t{0}, n);
    return;
  }
  WorkerPool::instance().run(jobs, [&](int w) {
    const std::size_t begin =
        n * static_cast<std::size_t>(w) / static_cast<std::size_t>(jobs);
    const std::size_t end =
        n * static_cast<std::size_t>(w + 1) / static_cast<std::size_t>(jobs);
    if (end > begin) fn(begin, end);
  });
}

}  // namespace

std::size_t parallel_threshold() {
  static const std::size_t threshold = calibrate_threshold();
  return threshold;
}

void evaluate_batch_into(std::span<const BatchPoint> points,
                         std::span<Prediction> out,
                         const BatchOptions& options) {
  if (out.size() != points.size())
    throw std::invalid_argument(
        "evaluate_batch_into: output span size must equal point count");
  if (points.empty()) return;
  for_ranges(points.size(), options.jobs,
             [&](std::size_t begin, std::size_t end) {
               evaluate_range(points.data() + begin, out.data() + begin,
                              end - begin, options);
             });
}

void evaluate_batch_into(const CombinedConfig& config,
                         std::span<const double> degrees,
                         std::span<Prediction> out,
                         const BatchOptions& options) {
  if (out.size() != degrees.size())
    throw std::invalid_argument(
        "evaluate_batch_into: output span size must equal degree count");
  if (degrees.empty()) return;
  if (options.mode == EvalMode::kFast) {
    // Dedicated sweep staging: the shared config broadcasts instead of
    // being replicated into (and re-read from) an AoS point array.
    for_ranges(degrees.size(), options.jobs,
               [&](std::size_t begin, std::size_t end) {
                 detail::evaluate_fast_grid(config, degrees.data() + begin,
                                            out.data() + begin, end - begin,
                                            options.simplified);
               });
    return;
  }
  std::vector<BatchPoint> points;
  points.reserve(degrees.size());
  for (const double r : degrees) points.push_back(BatchPoint{config, r});
  evaluate_batch_into(points, out, options);
}

std::vector<Prediction> evaluate_batch(std::span<const BatchPoint> points,
                                       const BatchOptions& options) {
  std::vector<Prediction> out(points.size());
  evaluate_batch_into(points, out, options);
  return out;
}

std::vector<Prediction> evaluate_batch(const CombinedConfig& config,
                                       std::span<const double> degrees,
                                       const BatchOptions& options) {
  std::vector<Prediction> out(degrees.size());
  evaluate_batch_into(config, degrees, out, options);
  return out;
}

}  // namespace redcr::model
