#include "model/batch.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

namespace redcr::model {

namespace {

/// Below this size the thread spawn overhead exceeds the evaluation cost.
constexpr std::size_t kParallelThreshold = 1024;

/// A worker is only worth spawning with at least this many points to chew
/// on: one model evaluation is a handful of transcendentals (~microseconds),
/// while a thread spawn costs tens of them.
constexpr std::size_t kMinPointsPerWorker = 512;

int resolve_jobs(int jobs, std::size_t points) {
  if (jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 1 : static_cast<int>(hw);
  }
  const std::size_t worthwhile =
      std::max<std::size_t>(points / kMinPointsPerWorker, 1);
  return std::clamp<int>(jobs, 1,
                         static_cast<int>(std::min<std::size_t>(
                             worthwhile, std::max<std::size_t>(points, 1))));
}

Prediction evaluate_one(const BatchPoint& point, const BatchOptions& options,
                        const SphereTermCache* cache) {
  return options.simplified ? predict_simplified(point.config, point.r, cache)
                            : predict(point.config, point.r, cache);
}

}  // namespace

std::vector<Prediction> evaluate_batch(std::span<const BatchPoint> points,
                                       const BatchOptions& options) {
  std::vector<Prediction> out(points.size());
  if (points.empty()) return out;

  // Pass 1: warm the shared sphere-term cache. Each point needs the Eq. 9
  // terms for (pf over t_Red, ⌊r⌋) and (pf, ⌈r⌉); across a grid most points
  // alias a handful of unique (pf, degree) keys, each computed once here.
  SphereTermCache cache;
  for (const BatchPoint& point : points) {
    const Partition partition =
        partition_processes(point.config.app.num_procs, point.r);
    const double t_red = redundant_time(point.config.app, point.r);
    const double pf = node_failure_probability(
        t_red, point.config.machine.node_mtbf, point.config.failure_model);
    if (partition.n_floor_set > 0) cache.warm(pf, partition.floor_degree);
    if (partition.n_ceil_set > 0) cache.warm(pf, partition.ceil_degree);
  }

  // Pass 2: evaluate against the read-only cache. Static slot partitioning:
  // worker w owns points [w*n/jobs, (w+1)*n/jobs) and writes only its own
  // output slots, so the merge is the identity and order never depends on
  // scheduling.
  const std::size_t n = points.size();
  const int jobs = resolve_jobs(options.jobs, n);
  if (jobs == 1 || n < kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = evaluate_one(points[i], options, &cache);
    return out;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    const std::size_t begin = n * static_cast<std::size_t>(w) /
                              static_cast<std::size_t>(jobs);
    const std::size_t end = n * static_cast<std::size_t>(w + 1) /
                            static_cast<std::size_t>(jobs);
    workers.emplace_back([&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i)
          out[i] = evaluate_one(points[i], options, &cache);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

std::vector<Prediction> evaluate_batch(const CombinedConfig& config,
                                       std::span<const double> degrees,
                                       const BatchOptions& options) {
  std::vector<BatchPoint> points;
  points.reserve(degrees.size());
  for (const double r : degrees) points.push_back(BatchPoint{config, r});
  return evaluate_batch(points, options);
}

}  // namespace redcr::model
