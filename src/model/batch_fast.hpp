// Internal: the EvalMode::kFast finishing pipeline (see batch.hpp).
// Lives in its own translation unit so it can be compiled with
// -ffp-contract=off (cross-ISA determinism of the vectorized math) without
// touching the flags — and therefore the bitwise behavior — of the exact
// scalar model TUs.
#pragma once

#include <cstddef>

#include "model/batch.hpp"

namespace redcr::model::detail {

/// Evaluates points[0..n) into out[0..n) with the vectorized pipeline.
/// Pure per-point function of the inputs: results are independent of n,
/// tiling and threading, so callers may split ranges freely.
void evaluate_fast(const BatchPoint* points, Prediction* out, std::size_t n,
                   bool simplified);

/// The sweep-shaped entry: one shared config, degrees[0..n) varying. Same
/// pipeline with the AoS extraction replaced by broadcasts, so for any i
/// the result is bitwise-identical to evaluate_fast on BatchPoint{config,
/// degrees[i]} — just faster. This is the Planner::plan / serve hot path.
void evaluate_fast_grid(const CombinedConfig& config, const double* degrees,
                        Prediction* out, std::size_t n, bool simplified);

}  // namespace redcr::model::detail
