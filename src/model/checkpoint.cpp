#include "model/checkpoint.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace redcr::model {

double young_interval(double checkpoint_cost, double system_mtbf) noexcept {
  assert(checkpoint_cost > 0.0);
  assert(system_mtbf > 0.0);
  return std::sqrt(2.0 * checkpoint_cost * system_mtbf);
}

double daly_interval(double checkpoint_cost, double system_mtbf) noexcept {
  assert(checkpoint_cost > 0.0);
  if (!(system_mtbf > 0.0) || !std::isfinite(system_mtbf)) {
    // Infinite MTBF: failures never happen; any interval works. Return a
    // huge-but-finite interval so c/δ → 0 in Eq. 14.
    return std::numeric_limits<double>::max() / 4.0;
  }
  const double c = checkpoint_cost;
  const double theta = system_mtbf;
  if (c >= 2.0 * theta) return theta;  // Daly's validity guard
  const double ratio = c / (2.0 * theta);
  return std::sqrt(2.0 * c * theta) *
             (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         c;
}

double expected_lost_work(double delta, double checkpoint_cost,
                          double system_mtbf) noexcept {
  assert(delta > 0.0);
  assert(checkpoint_cost >= 0.0);
  if (!(system_mtbf > 0.0)) return delta;  // immediate failure: lose a segment
  const double theta = system_mtbf;
  const double delta_c = delta + checkpoint_cost;
  // expm1 keeps precision in the Θ ≫ δ_c regime, where 1 - e^{-δ_c/Θ}
  // cancels catastrophically.
  const double denom =
      std::isfinite(theta) ? -std::expm1(-delta_c / theta) : 0.0;
  if (denom <= 0.0) {
    // Θ ≫ δ_c beyond double precision: the failure position is uniform over
    // the segment in the limit; use the series limit t_lw → δ(δ/2 + c)/δ_c.
    return delta * (delta / 2.0 + checkpoint_cost) / delta_c;
  }
  const double numer = -theta * std::expm1(-delta / theta) -
                       delta * std::exp(-delta_c / theta);
  return numer / denom;
}

double restart_rework_time(double restart_cost, double lost_work,
                           double system_mtbf, RestartModel model) noexcept {
  assert(restart_cost >= 0.0);
  assert(lost_work >= 0.0);
  const double x = restart_cost + lost_work;  // R + t_lw
  if (!(system_mtbf > 0.0)) return x;
  if (!std::isfinite(system_mtbf)) return x;
  const double theta = system_mtbf;
  const double survive = std::exp(-x / theta);     // Pr(no failure before x)
  const double fail = 1.0 - survive;               // Pr(failure before x)
  // ∫_0^x t·(1/Θ)e^{-t/Θ} dt = Θ - e^{-x/Θ}(x + Θ)  (truncated expectation).
  const double truncated = theta - survive * (x + theta);
  switch (model) {
    case RestartModel::kAsPublished:
      // Eq. 13 exactly as printed: the truncated expectation is multiplied
      // by Pr(failure before x) once more.
      return fail * truncated + survive * x;
    case RestartModel::kConditional:
      // Consistent variant: E[t | t < x]·Pr(t < x) = truncated expectation,
      // i.e. drop the extra probability factor.
      return truncated + survive * x;
  }
  return x;
}

double total_time(double base_time, double checkpoint_cost, double delta,
                  double failure_rate, double t_rr) noexcept {
  assert(base_time > 0.0);
  assert(delta > 0.0);
  assert(failure_rate >= 0.0);
  const double denom = 1.0 - failure_rate * t_rr;
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return (base_time + base_time * checkpoint_cost / delta) / denom;  // Eq. 14
}

}  // namespace redcr::model
