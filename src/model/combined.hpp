// Combined redundancy + checkpoint/restart model (Section 4.3) — the paper's
// primary contribution. Given machine and application parameters and a
// redundancy degree r, predicts the total wallclock time by chaining:
//   Eq. 1  (t_Red)  ->  Eqs. 9-10 (λ_sys, Θ_sys)  ->  Eq. 15 (δ_opt)
//   ->  Eq. 12 (t_lw)  ->  Eq. 13 (t_RR)  ->  Eq. 14 (T_total).
// Also provides the Section-6 simplified model used for Figs. 11-12, the
// optimal-degree search, and the crossover/break-even finders behind
// Figs. 13-14.
#pragma once

#include <optional>
#include <vector>

#include "model/params.hpp"
#include "model/redundancy.hpp"

namespace redcr::model {

/// All inputs of a combined-model evaluation.
struct CombinedConfig {
  AppParams app;
  MachineParams machine;
  NodeFailureModel failure_model = NodeFailureModel::kLinearized;
  RestartModel restart_model = RestartModel::kAsPublished;
  /// If set, overrides Daly's δ_opt with a fixed checkpoint interval.
  std::optional<double> fixed_interval;
  /// Use Young's first-order interval instead of Daly's (ablation).
  bool use_young_interval = false;
};

/// One fully evaluated model point; field names match the paper's symbols.
struct Prediction {
  double r = 1.0;                ///< redundancy degree evaluated
  double redundant_time = 0.0;   ///< t_Red (Eq. 1)
  double reliability = 1.0;      ///< R_sys over t_Red (Eq. 9)
  double failure_rate = 0.0;     ///< λ_sys (Eq. 10)
  double system_mtbf = 0.0;      ///< Θ_sys (Eq. 10)
  double interval = 0.0;         ///< δ used (Daly/Young/fixed)
  double lost_work = 0.0;        ///< t_lw (Eq. 12)
  double restart_rework = 0.0;   ///< t_RR (Eq. 13)
  double total_time = 0.0;       ///< T_total (Eq. 14)
  double expected_checkpoints = 0.0;  ///< t_Red/δ, the "Chkpts" annotation
  double expected_failures = 0.0;     ///< n_f = T_total·λ_sys (Eq. 11)
  std::size_t total_procs = 0;   ///< N_total (Eq. 8)
};

/// Evaluates the full combined model at redundancy degree r. `cache`
/// (optional) memoizes the Eq. 9 sphere terms — the plumbing behind
/// evaluate_batch(); results are bitwise-identical with or without it.
[[nodiscard]] Prediction predict(const CombinedConfig& config, double r,
                                 const SphereTermCache* cache = nullptr);

/// Section 6's simplified model, matched to the experimental setup (failures
/// are not injected during checkpoint or restart phases):
///   T_total = t_Red + (t_Red/δ_Young)·c + t_Red·λ_sys·R,
/// with δ_Young = sqrt(2cΘ_sys). (The paper prints the middle term without
/// the division by δ — dimensionally a typo; we use the consistent form,
/// which matches the paper's own Fig. 11 magnitudes.)
[[nodiscard]] Prediction predict_simplified(const CombinedConfig& config,
                                            double r,
                                            const SphereTermCache* cache =
                                                nullptr);

/// Evaluates `predict` over r in [r_begin, r_end] with the given step.
[[nodiscard]] std::vector<Prediction> sweep_redundancy(
    const CombinedConfig& config, double r_begin = 1.0, double r_end = 3.0,
    double step = 0.25);

/// Finds the redundancy degree minimizing T_total via grid scan plus
/// golden-section refinement within the best grid cell.
struct Optimum {
  double r = 1.0;
  Prediction prediction;
};
[[nodiscard]] Optimum optimize_redundancy(const CombinedConfig& config,
                                          double r_begin = 1.0,
                                          double r_end = 3.0,
                                          double grid_step = 0.05);

/// Finds the process count N at which T_total(r_a) == T_total(r_b) under
/// weak scaling (t fixed per process), by bisection over [n_lo, n_hi].
/// Returns nullopt if the difference does not change sign on the bracket.
[[nodiscard]] std::optional<double> crossover_procs(CombinedConfig config,
                                                    double r_a, double r_b,
                                                    double n_lo, double n_hi);

/// Finds the N at which T_total(r=1) == factor · T_total(r) — e.g. the
/// paper's "two dual-redundant jobs finish within one non-redundant job"
/// point uses r = 2, factor = 2 (Fig. 14, N ≈ 78,536 in the paper).
[[nodiscard]] std::optional<double> break_even_procs(CombinedConfig config,
                                                     double r, double factor,
                                                     double n_lo, double n_hi);

}  // namespace redcr::model
