// Model extensions beyond the paper's core equations:
//
//  - predict_same_nodes: the Ferreira-et-al. execution assumption the paper
//    contrasts itself against in Section 7 — replicas double up on the SAME
//    node count instead of occupying extra nodes, so computation (not just
//    communication) dilates by r. Lets a user quantify the paper's claim
//    that its extra-nodes assumption "is more realistic".
//
//  - optimal_interval_search: direct numerical minimization of Eq. 14 over
//    the checkpoint interval δ, independent of Daly's closed form (Eq. 15).
//    The paper takes Daly's δ_opt on faith ("instead of deriving our own");
//    this search quantifies how close Daly's formula lands to the true
//    minimizer of the combined model.
//
//  - sensitivity: elasticities of T_total with respect to each input
//    parameter at a configuration — which knob matters most.
#pragma once

#include "model/combined.hpp"

namespace redcr::model {

/// Evaluates the combined model under the same-node-count assumption:
/// r replicas share each node's compute, so t_Red = r·t (both compute and
/// communication dilate), while the node count — and therefore the machine
/// cost — stays N. Reliability still follows Eq. 9 over the dilated time
/// (each replica runs on its own *socket share*; replica deaths remain
/// independent to first order).
[[nodiscard]] Prediction predict_same_nodes(const CombinedConfig& config,
                                            double r);

/// Result of a direct δ search at a fixed redundancy degree.
struct IntervalOptimum {
  double best_interval = 0.0;   ///< argmin_δ of Eq. 14
  double best_total_time = 0.0;
  double daly_interval = 0.0;   ///< Eq. 15's closed form
  double daly_total_time = 0.0; ///< Eq. 14 at Daly's δ
  /// Relative excess of Daly's total time over the optimum (≥ 0).
  double daly_penalty = 0.0;
};

/// Golden-section search of Eq. 14 over δ ∈ [c/10, Θ·20] at degree r.
[[nodiscard]] IntervalOptimum optimal_interval_search(
    const CombinedConfig& config, double r);

/// d ln(T_total) / d ln(parameter), central differences at ±5%.
struct Sensitivity {
  double wrt_node_mtbf = 0.0;
  double wrt_checkpoint_cost = 0.0;
  double wrt_restart_cost = 0.0;
  double wrt_comm_fraction = 0.0;
  double wrt_num_procs = 0.0;
};

[[nodiscard]] Sensitivity sensitivity_at(const CombinedConfig& config,
                                         double r);

}  // namespace redcr::model
