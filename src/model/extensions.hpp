// Model extensions beyond the paper's core equations:
//
//  - predict_same_nodes: the Ferreira-et-al. execution assumption the paper
//    contrasts itself against in Section 7 — replicas double up on the SAME
//    node count instead of occupying extra nodes, so computation (not just
//    communication) dilates by r. Lets a user quantify the paper's claim
//    that its extra-nodes assumption "is more realistic".
//
//  - optimal_interval_search: direct numerical minimization of Eq. 14 over
//    the checkpoint interval δ, independent of Daly's closed form (Eq. 15).
//    The paper takes Daly's δ_opt on faith ("instead of deriving our own");
//    this search quantifies how close Daly's formula lands to the true
//    minimizer of the combined model.
//
//  - sensitivity: elasticities of T_total with respect to each input
//    parameter at a configuration — which knob matters most.
#pragma once

#include <vector>

#include "model/combined.hpp"

namespace redcr::model {

/// Evaluates the combined model under the same-node-count assumption:
/// r replicas share each node's compute, so t_Red = r·t (both compute and
/// communication dilate), while the node count — and therefore the machine
/// cost — stays N. Reliability still follows Eq. 9 over the dilated time
/// (each replica runs on its own *socket share*; replica deaths remain
/// independent to first order).
[[nodiscard]] Prediction predict_same_nodes(const CombinedConfig& config,
                                            double r);

/// Result of a direct δ search at a fixed redundancy degree.
struct IntervalOptimum {
  double best_interval = 0.0;   ///< argmin_δ of Eq. 14
  double best_total_time = 0.0;
  double daly_interval = 0.0;   ///< Eq. 15's closed form
  double daly_total_time = 0.0; ///< Eq. 14 at Daly's δ
  /// Relative excess of Daly's total time over the optimum (≥ 0).
  double daly_penalty = 0.0;
};

/// Golden-section search of Eq. 14 over δ ∈ [c/10, Θ·20] at degree r.
[[nodiscard]] IntervalOptimum optimal_interval_search(
    const CombinedConfig& config, double r);

/// d ln(T_total) / d ln(parameter), central differences at ±5%.
struct Sensitivity {
  double wrt_node_mtbf = 0.0;
  double wrt_checkpoint_cost = 0.0;
  double wrt_restart_cost = 0.0;
  double wrt_comm_fraction = 0.0;
  double wrt_num_procs = 0.0;
};

[[nodiscard]] Sensitivity sensitivity_at(const CombinedConfig& config,
                                         double r);

// --- Unreliable checkpoint/restart term --------------------------------------
//
// The paper's T_total (Eq. 14) assumes every checkpoint restores and every
// restart succeeds. The unreliable-C/R extension (cf. "On the Combination of
// Silent Error Detection and Checkpointing") adds two probabilities:
//
//   p_v  probability a committed checkpoint generation passes restart-time
//        validation (for a per-image corruption probability p_c over P
//        images, p_v = (1 - p_c)^P);
//   s    probability one restart attempt succeeds.
//
// Each of the n_f expected failures then costs extra recovery time:
//   - failed restart attempts: the attempt count is truncated-geometric in s
//     with at most A attempts, so E[attempts] - 1 extra restarts of cost R;
//   - fallback: validation walks the d retained generations newest-first;
//     each generation fallen back re-does about one checkpoint period of
//     work (δ + c), so E[fallback depth]·(δ + c) extra rework.
// A recovery *aborts* when all A attempts fail or all d generations are
// corrupt; the job-level abort probability compounds over n_f failures.
//
// With p_v = s = 1 every derived quantity collapses to the reliable model.

/// Model-side knobs of the unreliable C/R pipeline (simulation
/// counterparts: failure::CkptFaultParams, failure::RetryPolicy and
/// runtime::JobConfig::ckpt_retention).
struct UnreliableCkptParams {
  double ckpt_validity = 1.0;    ///< p_v ∈ [0, 1]
  double restart_success = 1.0;  ///< s ∈ [0, 1]
  int retention_depth = 1;       ///< d ≥ 1 generations retained
  int max_restart_attempts = 1;  ///< A ≥ 1 attempts per recovery

  // --- Multi-level storage hierarchy (simulation counterpart:
  // ckpt::HierarchyParams). Empty levels = the flat model above. ----------

  /// One recovery level, fastest first (matching the simulator's order).
  struct LevelRecovery {
    /// P(this level can serve a recovery): it survived the failure's dead
    /// set AND holds a generation that validates. For a per-image
    /// corruption probability p_c over P images this is
    /// P(survives)·(1 - p_c)^P.
    double recovery_prob = 0.0;
    /// Seconds to read the image set back when this level serves (0 = the
    /// fetch is subsumed in the flat restart cost R).
    double fetch_cost = 0.0;
    /// Expected extra checkpoint *periods* of rework when served here —
    /// levels written every m-th epoch are on average (m-1)/2 periods
    /// staler than the newest checkpoint.
    double staleness_periods = 0.0;
  };
  /// When non-empty, recovery walks these levels fastest-first and the
  /// flat (ckpt_validity, retention_depth) fallback term is replaced by
  /// the per-level serve probabilities; fold validity into each level's
  /// recovery_prob instead.
  std::vector<LevelRecovery> levels;
  /// Wallclock of one PFS drain, seconds (0 = no flush modeling).
  double flush_cost = 0.0;
  /// Checkpoint epochs between PFS drains (≥ 1).
  double flush_period = 1.0;
  /// Async flush: drains overlap useful work; only `async_exposed_fraction`
  /// of each drain stays on the critical path (the terminal drain and any
  /// interference), instead of the full flush_cost.
  bool async_flush = false;
  double async_exposed_fraction = 0.0;  ///< ∈ [0, 1]

  /// Throws std::invalid_argument on NaN/out-of-range values.
  void validate() const;
};

/// The reliable prediction plus the expected unreliable-pipeline overheads.
struct UnreliablePrediction {
  Prediction base;  ///< reliable-pipeline prediction at the same (config, r)
  /// E[restart attempts per recovery | recovery succeeds] ∈ [1, A].
  double expected_restart_attempts = 1.0;
  /// E[generations discarded per recovery | some generation validates].
  double expected_fallback_depth = 0.0;
  /// Expected extra recovery time per failure, seconds.
  double per_failure_overhead = 0.0;
  /// Probability one recovery aborts (restarts exhausted or no valid
  /// generation among the d retained).
  double abort_probability_per_failure = 0.0;
  /// Probability the job aborts at least once over its n_f failures.
  double abort_probability = 0.0;
  /// T_total + n_f · per_failure_overhead (+ flush_overhead_total).
  double total_time = 0.0;
  // --- Hierarchy terms (all zero/empty with no levels configured) ---------
  /// P(recovery is served by level l) = p_l · Π_{j<l}(1 - p_j).
  std::vector<double> level_serve_prob;
  /// P(some level serves) = 1 - Π(1 - p_l).
  double recovery_probability = 1.0;
  /// E[fetch seconds | some level serves].
  double expected_fetch_cost = 0.0;
  /// E[staleness rework | some level serves], seconds ( = E[periods]·(δ+c)).
  double expected_staleness_rework = 0.0;
  /// Critical-path flush time over the whole job: (n_ckpt / flush_period) ·
  /// flush_cost · (async ? exposed_fraction : 1).
  double flush_overhead_total = 0.0;
};

[[nodiscard]] UnreliablePrediction predict_unreliable(
    const CombinedConfig& config, double r, const UnreliableCkptParams& u);

// --- Per-failure waste prediction (journal blame counterpart) ----------------

/// What the first-order checkpointing model expects ONE failure to cost.
/// The journal analyzer (obs::blame) measures the same quantities per
/// observed failure; `redcr_cli analyze --blame` prints predicted columns
/// next to the attributed ones so the residual is visible per run.
struct FailureWaste {
  /// E[rework]: work since the last durable checkpoint at a uniformly-
  /// placed failure — half a checkpoint period, (δ + c) / 2.
  double rework = 0.0;
  /// Restart dead time: one successful attempt, R.
  double restart = 0.0;
  [[nodiscard]] double total() const noexcept { return rework + restart; }
};

/// First-order expected waste of one failure under interval δ, per-epoch
/// checkpoint cost c and restart cost R (the Daly/Eq.-14 ingredients).
/// Throws std::invalid_argument on negative or NaN inputs.
[[nodiscard]] FailureWaste predicted_failure_waste(double interval,
                                                   double ckpt_cost,
                                                   double restart_cost);

// --- Silent-data-corruption terms (simulator counterpart: failure::SdcMonitor
// + the verified/unverified checkpoint recovery in runtime::JobExecutor) ------
//
// The SDC detector is replication itself: a tainted payload is noticed only
// when a receiving copy-set diverges, which happens at the application's
// communication cadence, not instantly. The closed forms below follow the
// simulator's iteration structure — per iteration: checkpoint boundary
// first, then T_c seconds of compute, then the halo exchange whose voting
// is the detector. An at-rest infection therefore lands uniformly inside a
// checkpoint period of length δ + c, and:
//
//   during work   (prob δ/(δ+c))  detected at the same iteration's halo:
//                                 latency ≈ T_c/2; no checkpoint committed
//                                 in between, so invalidation depth 0.
//   during a ckpt (prob c/(δ+c))  the epoch publishes *unverified*; the
//                                 detection waits for the next compute:
//                                 latency ≈ c/2 + T_c; depth 1.
//
// Whether the infection is detectable at all is a property of where it
// lands: ranks in dual spheres detect (uncorrectable → rollback), triple
// spheres outvote it (corrected, no rollback), unreplicated spheres pass it
// silently — the paper's partition (Eqs. 5–8) decides the mix.

/// Inputs of predict_sdc. The sphere-degree census can be given exactly
/// (count physical ranks per degree from red::ReplicaMap — the bench does
/// this to avoid partition-rounding drift) or left all-zero to derive the
/// continuous fractions from `redundancy` alone.
struct SdcModelParams {
  double interval = 0.0;   ///< δ: work seconds between checkpoints
  double ckpt_cost = 0.0;  ///< c: wallclock of one checkpoint epoch
  /// T_c: compute seconds per iteration — the detector's granularity (the
  /// halo vote runs once per iteration).
  double compute_per_iteration = 0.0;
  /// Physical ranks living in degree-1 / degree-2 / degree-3 spheres.
  double single_ranks = 0.0;
  double dual_ranks = 0.0;
  double triple_ranks = 0.0;
  /// Fallback census source when the explicit counts are all zero:
  /// r ∈ [1, 3] under the paper's partition.
  double redundancy = 0.0;

  /// Throws std::invalid_argument on NaN/negative values, a zero-length
  /// checkpoint period, or an empty census with redundancy outside [1, 3].
  void validate() const;
};

/// Closed-form SDC expectations, validated against the simulator by
/// bench/bench_sdc (≤ 10% worst relative error gate on the latency and
/// rework terms).
struct SdcPrediction {
  /// First-infection classification: where a uniformly placed at-rest
  /// infection lands. p_silent + p_detect + p_correct == 1.
  double p_silent = 0.0;   ///< degree-1 sphere: passes every vote
  double p_detect = 0.0;   ///< degree-2: uncorrectable mismatch → rollback
  double p_correct = 0.0;  ///< degree-3: outvoted, execution continues
  /// E[detection latency | detectable], seconds from injection to the
  /// uncorrectable mismatch.
  double detection_latency = 0.0;
  /// E[unverified generations invalidated per detection] = c / (δ + c).
  double invalidated_depth = 0.0;
  /// E[work discarded per detection], seconds: verified work rolled back
  /// plus the infected work since the last *verified* checkpoint.
  double rework_per_detection = 0.0;
};

[[nodiscard]] SdcPrediction predict_sdc(const SdcModelParams& params);

}  // namespace redcr::model
