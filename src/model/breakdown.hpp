// Time-breakdown view of the model: splits T_total into the work /
// checkpoint / recompute / restart fractions that the Sandia study (and the
// paper's Tables 2-3) report.
#pragma once

#include "model/combined.hpp"

namespace redcr::model {

/// Fractions of the total wallclock time; they sum to 1 (up to rounding).
struct TimeBreakdown {
  double work = 0.0;        ///< useful computation, t_Red/T_total
  double checkpoint = 0.0;  ///< periodic checkpoint overhead
  double recompute = 0.0;   ///< rework of lost progress after failures
  double restart = 0.0;     ///< restart phases after failures
  double total_time = 0.0;  ///< T_total itself, seconds
  double expected_failures = 0.0;
};

/// Evaluates the combined model at degree r and splits the resulting
/// T_total. The rework/restart split of each t_RR phase is proportional to
/// t_lw vs. R (the model folds both into one phase, Eq. 13).
[[nodiscard]] TimeBreakdown compute_breakdown(const CombinedConfig& config,
                                              double r = 1.0);

}  // namespace redcr::model
