// Parameter sets for the analytic model (Section 4 of the paper).
//
// Symbols follow the paper:
//   N — number of virtual processes,  r — redundancy degree,
//   t — failure-free base execution time,  α — communication fraction,
//   θ — per-node MTBF,  c — checkpoint cost,  R — restart cost.
#pragma once

#include <cstddef>

#include "util/units.hpp"

namespace redcr::model {

/// Hardware/infrastructure parameters of the machine the job runs on.
struct MachineParams {
  /// θ: mean time between failures of a single node, seconds. A "node" is
  /// the paper's unit of independent failure (socket-equivalent).
  util::Seconds node_mtbf = util::years(5);
  /// c: wallclock overhead of taking one coordinated checkpoint, seconds.
  util::Seconds checkpoint_cost = util::seconds(600);
  /// R: maximum time for a restart phase (read images, relaunch, coordinate).
  util::Seconds restart_cost = util::seconds(600);
};

/// Parameters of the application job.
struct AppParams {
  /// t: failure-free, redundancy-free execution time, seconds.
  util::Seconds base_time = util::hours(128);
  /// α: fraction of t spent communicating (0 ≤ α ≤ 1). Only this fraction
  /// dilates under redundancy (Eq. 1).
  double comm_fraction = 0.2;
  /// N: number of virtual processes (each assigned to its own node).
  std::size_t num_procs = 10000;
};

/// How the per-node failure probability over an interval t is computed.
enum class NodeFailureModel {
  /// Pr = t/θ — the paper's first-order Taylor form (Eq. 3). Invalid when
  /// t approaches θ; we clamp to [0,1] and the exact model is available as
  /// an ablation.
  kLinearized,
  /// Pr = 1 - e^{-t/θ} — the exact exponential CDF (Eq. 2).
  kExactExponential,
};

/// How t_RR (Eq. 13) treats the expected-failure-time integral.
enum class RestartModel {
  /// Exactly as published: the truncated-expectation integral is further
  /// multiplied by Pr(failure before R + t_lw).
  kAsPublished,
  /// Mathematically consistent variant: the integral is the *conditional*
  /// expectation (divided by that probability). Kept as an ablation;
  /// differences are small in the paper's parameter regime.
  kConditional,
};

}  // namespace redcr::model
