// PullComm: VolpexMPI-style pull-model replication (paper Section 2:
// "communication follows the pull model; the sending processes buffer data
// objects locally and receiving processes contact one of the replicas of
// the sending process to get the data object").
//
// Contrast with RedComm's push model:
//   - a send buffers locally and completes immediately — zero network cost
//     at send time, regardless of the destination's degree;
//   - a receive sends a small REQUEST to *one* live replica of the sender
//     sphere and gets back a single full copy, so total payload traffic is
//     r_dst-proportional instead of r_src·r_dst-proportional;
//   - the price: one request/response round trip of latency per message,
//     and no copy comparison — pull mode targets availability (volunteer
//     nodes), not silent-data-corruption detection.
//
// Failover: if the contacted replica dies before answering (its pending
// response is aborted via live failure semantics), the receiver reissues
// the request to the next live replica.
//
// Streams: messages from virtual sender S to virtual destination D with tag
// t form one sequence; every replica of D consumes the same sequence
// (seq = count of receives it has issued on (S, t)), and every replica of S
// buffers the same sequence, so any replica can serve any request.
//
// Limitations: MPI_ANY_SOURCE is not supported (a puller must know whom to
// ask — VolpexMPI shares this restriction in spirit); buffered payloads are
// retained for the episode (no garbage collection — simulation memory is
// bounded by tests'/benches' run lengths).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "red/replica_map.hpp"
#include "red/red_comm.hpp"  // for Liveness
#include "simmpi/comm.hpp"
#include "simmpi/world.hpp"
#include "util/flat_map.hpp"

namespace redcr::red {

struct PullStats {
  std::uint64_t sends_buffered = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_served = 0;
  std::uint64_t failovers = 0;  ///< requests reissued after a replica death
};

class PullComm final : public simmpi::Comm {
 public:
  PullComm(simmpi::World& world, const ReplicaMap& map, Rank physical_rank);

  [[nodiscard]] Rank rank() const noexcept override { return virtual_rank_; }
  [[nodiscard]] int size() const noexcept override {
    return static_cast<int>(map_->num_virtual());
  }
  [[nodiscard]] sim::Engine& engine() const noexcept override {
    return endpoint_->engine();
  }

  /// Buffers the payload locally; completes immediately.
  simmpi::Request isend(Rank dst, int tag, simmpi::Payload payload) override;

  /// Requests the next message of stream (src, tag) from one live replica
  /// of the sender sphere. kAnySource is not supported.
  simmpi::Request irecv(Rank src, int tag) override;

  [[nodiscard]] const PullStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Rank physical_rank() const noexcept {
    return endpoint_->rank();
  }

  void set_liveness(const Liveness* liveness) { liveness_ = liveness; }

  /// Attaches an observability recorder (nullptr detaches). Feeds the
  /// "pull.requests" / "pull.failovers" counters shared by all PullComms.
  void set_recorder(obs::Recorder* recorder);

 private:
  /// Control tags (outside the collective band, below the quiesce band).
  static constexpr int kRequestTag = 3 << 28;
  static constexpr int kDataTagOffset = (3 << 28) + (1 << 27);

  /// Stream identity (virtual peer rank, tag) packed for the flat tables.
  /// Ranks and tags are non-negative, so the key never hits the ~0 sentinel.
  static std::uint64_t stream_key(Rank rank, int tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  struct PendingRequest {
    Rank requester_physical;
    std::uint64_t seq;
  };

  /// Background server: answers pull requests against the local buffer.
  sim::Task responder_loop();

  /// Client side: issue the request for (src, tag, seq) and complete
  /// `parent` with the response, failing over across replicas.
  sim::Task drive_pull(Rank src_virtual, int tag, std::uint64_t seq,
                       simmpi::Request parent);

  /// Serves buffered message `seq` of stream (dst_virtual, tag) to the
  /// requester if available; otherwise queues the request.
  void serve_or_queue(Rank dst_virtual, int tag, std::uint64_t seq,
                      Rank requester);

  [[nodiscard]] bool dead(Rank physical) const {
    return liveness_ != nullptr && liveness_->is_dead(physical);
  }

  simmpi::World* world_;
  const ReplicaMap* map_;
  simmpi::Endpoint* endpoint_;
  Rank virtual_rank_;
  unsigned replica_index_;
  const Liveness* liveness_ = nullptr;
  obs::Counter* requests_counter_ = nullptr;   // cached registry handles
  obs::Counter* failovers_counter_ = nullptr;
  PullStats stats_;

  /// Sender side: all payloads produced per stream, indexed by seq.
  util::FlatMap64<std::vector<simmpi::Payload>> out_buffers_;
  /// Requests for payloads not yet produced, per stream.
  util::FlatMap64<std::deque<PendingRequest>> waiting_requests_;
  /// Receiver side: next seq to consume per stream.
  util::FlatMap64<std::uint64_t> recv_cursor_;
};

}  // namespace redcr::red
