#include "red/red_comm.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/log.hpp"

namespace redcr::red {

using simmpi::kAnySource;
using simmpi::Message;
using simmpi::Payload;
using simmpi::Request;

namespace {

/// Encodes a content hash as an 8-byte data payload (the "hash message" of
/// msg-plus-hash mode).
Payload hash_payload(std::uint64_t hash) {
  return Payload::of({std::bit_cast<double>(hash)});
}

std::uint64_t decode_hash(const Payload& payload) {
  assert(payload.has_data() && payload.values().size() == 1);
  return std::bit_cast<std::uint64_t>(payload.values()[0]);
}

}  // namespace

RedComm::RedComm(simmpi::World& world, const ReplicaMap& map,
                 Rank physical_rank, const RedConfig& config)
    : world_(&world),
      map_(&map),
      config_(&config),
      endpoint_(&world.endpoint(physical_rank)),
      virtual_rank_(map.virtual_of(physical_rank)),
      replica_index_(map.replica_index(physical_rank)) {
  if (world.size() != static_cast<int>(map.num_physical()))
    throw std::invalid_argument(
        "RedComm: physical world size must match the replica map");
}

Request RedComm::isend(Rank dst, int tag, Payload payload) {
  if (dst < 0 || dst >= size())
    throw std::out_of_range("RedComm::isend: virtual rank out of range");
  if (corruption_hook_) payload = corruption_hook_(std::move(payload));
  // At-rest state corruption: an infected sender taints everything it sends
  // (all copies consistently, so sibling replicas stay the divergence
  // signal). Per-copy in-flight flips are applied inside the fan-out loop.
  const std::uint64_t ordinal = send_ordinal_++;
  if (sdc_ != nullptr) {
    payload =
        sdc_->on_send(endpoint_->rank(), std::move(payload), engine().now());
  }

  auto parent = std::make_shared<simmpi::RequestState>();
  // A dead process sends nothing (live failure semantics); completing the
  // request keeps its (doomed) coroutine from wedging mid-send.
  if (dead(endpoint_->rank())) {
    parent->aborted = true;
    complete_request(*parent, engine());
    return parent;
  }

  const auto dst_replicas = map_->replicas(dst);

  // The full/hash pairing is computed over the *live* replica sets so a
  // msg-plus-hash receiver whose designated full-sender died still gets a
  // full copy from a surviving one.
  std::vector<Rank> live_dst;
  for (const Rank q : dst_replicas)
    if (!dead(q)) live_dst.push_back(q);
  if (live_dst.empty()) {
    // Destination sphere is gone; the job is about to fail anyway.
    parent->aborted = true;
    complete_request(*parent, engine());
    return parent;
  }
  unsigned my_live_index = 0, my_live_degree = 0;
  for (const Rank q : map_->replicas(virtual_rank_)) {
    if (dead(q)) continue;
    if (q == endpoint_->rank()) my_live_index = my_live_degree;
    ++my_live_degree;
  }

  auto remaining = std::make_shared<std::size_t>(live_dst.size());
  for (unsigned j = 0; j < live_dst.size(); ++j) {
    Payload copy = payload;
    if (sdc_ != nullptr) {
      copy = sdc_->on_copy(endpoint_->rank(), ordinal, static_cast<int>(j),
                           std::move(copy), engine().now());
    }
    Request sub;
    if (sends_full(my_live_index, j, my_live_degree, config_->mode)) {
      sub = endpoint_->isend(live_dst[j], tag, std::move(copy));
    } else {
      // The hash message hashes the (possibly corrupted) copy, and carries
      // the copy's strain tag so a detection through a hash-only copy can
      // still chain back to the injection event.
      Payload hp = hash_payload(copy.hash());
      if (copy.tainted()) hp = hp.corrupted(copy.strain());
      sub = endpoint_->isend(live_dst[j], kHashTagOffset + tag, std::move(hp));
    }
    simmpi::attach_completion(sub, [this, remaining, parent] {
      if (--*remaining == 0) complete_request(*parent, engine());
    });
  }
  return parent;
}

Request RedComm::irecv(Rank src, int tag) {
  auto parent = std::make_shared<simmpi::RequestState>();
  if (src == kAnySource) {
    // Paper Section 3: wildcard receives need the three-step envelope
    // protocol so all replicas of this sphere agree on the virtual sender.
    engine().spawn(drive_wildcard(tag, parent));
    return parent;
  }
  if (src < 0 || src >= size())
    throw std::out_of_range("RedComm::irecv: virtual rank out of range");
  post_copy_set(src, tag, parent);
  return parent;
}

void RedComm::post_copy_set(Rank src_virtual, int tag, Request parent) {
  // Only expect copies from replicas that are still alive; the pairing of
  // full vs hash copies is over the live set, mirroring isend.
  std::vector<Rank> live_src;
  for (const Rank q : map_->replicas(src_virtual))
    if (!dead(q)) live_src.push_back(q);
  if (live_src.empty()) {
    parent->aborted = true;
    complete_request(*parent, engine());
    return;
  }
  const auto src_degree = static_cast<unsigned>(live_src.size());

  // My pairing slot is my position among my sphere's live replicas — the
  // same view the senders use when choosing full vs hash targets.
  unsigned my_live_index = 0, live_seen = 0;
  for (const Rank q : map_->replicas(virtual_rank_)) {
    if (dead(q)) continue;
    if (q == endpoint_->rank()) my_live_index = live_seen;
    ++live_seen;
  }

  std::vector<Request> subs;
  subs.reserve(src_degree);
  for (unsigned i = 0; i < src_degree; ++i) {
    const bool full = sends_full(i, my_live_index, src_degree, config_->mode);
    subs.push_back(endpoint_->irecv(live_src[i],
                                    full ? tag : kHashTagOffset + tag));
  }

  // The comm owns the copy-set; the hooks hold only an iterator. (Having
  // each hook own the sub vector would make sub → hook → subs a shared_ptr
  // cycle that leaks every copy-set still in flight at episode teardown.)
  copy_sets_.emplace_back();
  const auto it = std::prev(copy_sets_.end());
  it->subs = std::move(subs);
  // +1 guard: a sub that is already complete runs its hook inside
  // attach_completion, and the set must not finish (and erase itself) while
  // this frame still iterates it.
  it->remaining = it->subs.size() + 1;
  auto maybe_finish = [this, it, src_virtual, tag, parent] {
    if (--it->remaining == 0) {
      finish_copy_set(it->subs, src_virtual, tag, parent);
      copy_sets_.erase(it);
    }
  };
  for (auto& sub : it->subs) simmpi::attach_completion(sub, maybe_finish);
  maybe_finish();  // releases the guard
}

sim::Task RedComm::drive_wildcard(int tag, Request parent) {
  const auto my_replicas = map_->replicas(virtual_rank_);
  // Under live semantics the sphere leader is the first *live* replica (a
  // leader death between instances fails over; a death mid-instance is a
  // documented window).
  Rank leader = my_replicas[0];
  for (const Rank q : my_replicas) {
    if (!dead(q)) {
      leader = q;
      break;
    }
  }

  Rank src_virtual;
  std::vector<Message> copies;
  if (endpoint_->rank() == leader) {
    // Serialize wildcard instances per tag: until the previous instance has
    // posted its remaining-copy receives, our ANY_SOURCE receive could
    // steal the *duplicate* copy of the previous instance's message (every
    // sender replica posts a full copy under the application tag).
    auto my_turn_done = std::make_shared<sim::OneShotEvent>();
    auto previous_turn = std::exchange(
        wildcard_turn_[static_cast<std::uint64_t>(tag)], my_turn_done);
    if (previous_turn) co_await previous_turn->wait();

    // Step 1: only the sphere leader posts the physical wildcard receive.
    // Hash copies travel in the private tag band, so in msg-plus-hash mode
    // this can only match a full-payload copy.
    Message first = co_await wait(endpoint_->irecv(kAnySource, tag));
    src_virtual = map_->virtual_of(first.envelope.source);
    // Step 2: forward the envelope (the winning virtual sender) to the
    // live siblings.
    for (const Rank sibling : my_replicas) {
      if (sibling == endpoint_->rank() || dead(sibling)) continue;
      endpoint_->isend(sibling, kEnvelopeTagOffset + tag,
                       Payload::of({static_cast<double>(src_virtual)}));
    }
    // Step 3 (leader side): post receives for the remaining copies of this
    // message, then release the next wildcard instance — the specific
    // receives are now ahead of its ANY_SOURCE receive in the posting
    // order, so duplicates can no longer be stolen.
    const Rank first_source = first.envelope.source;
    copies.push_back(std::move(first));
    std::vector<Rank> live_src;
    unsigned my_pos = 0;  // the leader receives the pairing slot of its
                          // live index within its own sphere (0 by choice)
    for (const Rank q : map_->replicas(src_virtual))
      if (!dead(q)) live_src.push_back(q);
    const auto src_degree = static_cast<unsigned>(live_src.size());
    std::vector<Request> subs;
    for (unsigned i = 0; i < src_degree; ++i) {
      if (live_src[i] == first_source) continue;
      const bool full = sends_full(i, my_pos, src_degree, config_->mode);
      subs.push_back(endpoint_->irecv(live_src[i],
                                      full ? tag : kHashTagOffset + tag));
    }
    my_turn_done->trigger(engine());
    for (auto& sub : subs) {
      Message copy = co_await wait(sub);
      if (!sub->aborted) copies.push_back(std::move(copy));
    }
    finalize(src_virtual, tag, std::move(copies), parent);
  } else {
    // Step 3 (sibling side): learn the envelope from the leader, then post
    // specific receives exactly like a non-wildcard receive.
    Message envelope = co_await wait(
        endpoint_->irecv(leader, kEnvelopeTagOffset + tag));
    src_virtual = static_cast<Rank>(envelope.payload.values()[0]);
    post_copy_set(src_virtual, tag, parent);
  }
}

void RedComm::finish_copy_set(const std::vector<Request>& subs,
                              Rank src_virtual, int tag, Request parent) {
  std::vector<Message> copies;
  copies.reserve(subs.size());
  for (const auto& sub : subs) {
    assert(sub->complete);
    if (sub->aborted) continue;  // peer died before sending this copy
    copies.push_back(sub->message);
  }
  if (copies.empty()) {
    // Every copy aborted: the sender sphere died mid-exchange. The job is
    // failing; complete the parent as aborted so nothing blocks teardown.
    parent->aborted = true;
    complete_request(*parent, engine());
    return;
  }
  finalize(src_virtual, tag, std::move(copies), parent);
}

void RedComm::set_recorder(obs::Recorder* recorder) {
  if (recorder == nullptr) {
    compared_counter_ = nullptr;
    detected_counter_ = nullptr;
    corrected_counter_ = nullptr;
    return;
  }
  compared_counter_ = &recorder->metrics().counter("red.compared");
  detected_counter_ =
      &recorder->metrics().counter("red.mismatches_detected");
  corrected_counter_ =
      &recorder->metrics().counter("red.mismatches_corrected");
}

void RedComm::finalize(Rank src_virtual, int tag, std::vector<Message> copies,
                       Request parent) {
  assert(!copies.empty());
  // Partition into full copies and hash-only copies by tag band.
  std::vector<const Message*> fulls;
  std::vector<std::uint64_t> hashes;
  for (const Message& copy : copies) {
    if (copy.envelope.tag >= kHashTagOffset &&
        copy.envelope.tag < kEnvelopeTagOffset) {
      hashes.push_back(decode_hash(copy.payload));
    } else {
      fulls.push_back(&copy);
      hashes.push_back(copy.payload.hash());
    }
  }
  assert(!fulls.empty() && "every copy-set carries at least one full copy");

  const Message* chosen = fulls.front();
  bool mismatch = false;
  bool corrected = false;
  if (config_->vote && hashes.size() > 1) {
    ++stats_.messages_compared;
    if (compared_counter_ != nullptr) compared_counter_->add();
    if (compared_log_ != nullptr) compared_log_->push_back(engine().now());
    std::map<std::uint64_t, unsigned> counts;
    for (const std::uint64_t h : hashes) ++counts[h];
    if (counts.size() > 1) {
      mismatch = true;
      ++stats_.mismatches_detected;
      if (detected_counter_ != nullptr) detected_counter_->add();
      // Majority vote: adopt a full copy carrying the majority content, if
      // both a strict majority and such a copy exist (paper: triple
      // redundancy can vote out the corrupt message).
      const auto majority = std::max_element(
          counts.begin(), counts.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      if (majority->second * 2 > hashes.size()) {
        const auto it = std::find_if(
            fulls.begin(), fulls.end(), [&](const Message* m) {
              return m->payload.hash() == majority->first;
            });
        if (it != fulls.end()) {
          chosen = *it;
          corrected = true;
          ++stats_.mismatches_corrected;
          if (corrected_counter_ != nullptr) corrected_counter_->add();
          REDCR_LOG_WARN << "red: replica mismatch outvoted (virtual rank "
                         << virtual_rank_ << " <- " << src_virtual << ", tag "
                         << tag << ", " << hashes.size() << " copies)";
        }
      }
    }
  }

  // A tainted payload that survives the vote without any observed
  // divergence passed the detector silently (single-copy spheres, or a
  // consistently infected sender sphere).
  if (chosen->payload.tainted() && !mismatch) ++stats_.mismatches_undetected;

  if (sdc_ != nullptr) {
    std::uint64_t seen = 0;
    for (const Message& copy : copies) {
      if (copy.payload.strain() != 0) {
        seen = copy.payload.strain();
        break;
      }
    }
    if (seen != 0 || mismatch) {
      SdcPolicy::Delivery delivery;
      delivery.receiver_physical = endpoint_->rank();
      delivery.receiver_virtual = virtual_rank_;
      delivery.sender_virtual = src_virtual;
      delivery.chosen_strain = chosen->payload.strain();
      delivery.seen_strain = seen;
      delivery.copies = hashes.size();
      delivery.mismatch = mismatch;
      delivery.corrected = corrected;
      delivery.now = engine().now();
      sdc_->on_delivery(delivery);
    }
  }

  parent->message.envelope =
      simmpi::Envelope{src_virtual, virtual_rank_, tag};
  parent->message.payload = chosen->payload;
  parent->message.seq = chosen->seq;
  complete_request(*parent, engine());
}

}  // namespace redcr::red
