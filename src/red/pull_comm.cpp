#include "red/pull_comm.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace redcr::red {

using simmpi::Message;
using simmpi::Payload;
using simmpi::Request;

PullComm::PullComm(simmpi::World& world, const ReplicaMap& map,
                   Rank physical_rank)
    : world_(&world),
      map_(&map),
      endpoint_(&world.endpoint(physical_rank)),
      virtual_rank_(map.virtual_of(physical_rank)),
      replica_index_(map.replica_index(physical_rank)) {
  if (world.size() != static_cast<int>(map.num_physical()))
    throw std::invalid_argument(
        "PullComm: physical world size must match the replica map");
  engine().spawn(responder_loop());
}

Request PullComm::isend(Rank dst, int tag, Payload payload) {
  if (dst < 0 || dst >= size())
    throw std::out_of_range("PullComm::isend: virtual rank out of range");
  auto parent = std::make_shared<simmpi::RequestState>();
  if (dead(endpoint_->rank())) {
    parent->aborted = true;
    complete_request(*parent, engine());
    return parent;
  }
  // Pull model: the send is a local buffer append — it completes now.
  ++stats_.sends_buffered;
  auto& buffer = out_buffers_[stream_key(dst, tag)];
  buffer.push_back(std::move(payload));

  // Serve any queued requests that just became satisfiable. Productions are
  // prefix-complete, so draining the queue head-first preserves per-
  // requester seq order.
  auto* waiting = waiting_requests_.find(stream_key(dst, tag));
  if (waiting != nullptr) {
    auto& queue = *waiting;
    while (!queue.empty() && queue.front().seq < buffer.size()) {
      const PendingRequest request = queue.front();
      queue.pop_front();
      if (!dead(endpoint_->rank())) {
        ++stats_.responses_served;
        endpoint_->isend(request.requester_physical, kDataTagOffset + tag,
                         buffer[request.seq]);
      }
    }
  }
  complete_request(*parent, engine());
  return parent;
}

Request PullComm::irecv(Rank src, int tag) {
  if (src == simmpi::kAnySource)
    throw std::logic_error(
        "PullComm: MPI_ANY_SOURCE is not supported by the pull model "
        "(a puller must know which sphere to ask)");
  if (src < 0 || src >= size())
    throw std::out_of_range("PullComm::irecv: virtual rank out of range");
  auto parent = std::make_shared<simmpi::RequestState>();
  const std::uint64_t seq = recv_cursor_[stream_key(src, tag)]++;
  engine().spawn(drive_pull(src, tag, seq, parent));
  return parent;
}

void PullComm::set_recorder(obs::Recorder* recorder) {
  if (recorder == nullptr) {
    requests_counter_ = nullptr;
    failovers_counter_ = nullptr;
    return;
  }
  requests_counter_ = &recorder->metrics().counter("pull.requests");
  failovers_counter_ = &recorder->metrics().counter("pull.failovers");
}

sim::Task PullComm::drive_pull(Rank src_virtual, int tag, std::uint64_t seq,
                               Request parent) {
  if (dead(endpoint_->rank())) {
    parent->aborted = true;
    complete_request(*parent, engine());
    co_return;
  }
  const auto replicas = map_->replicas(src_virtual);
  const auto degree = static_cast<unsigned>(replicas.size());
  // Preferred target: spread receiver replicas across sender replicas.
  const unsigned preferred = replica_index_ % degree;
  bool first_attempt = true;
  for (unsigned hop = 0; hop < degree; ++hop) {
    const Rank target = replicas[(preferred + hop) % degree];
    if (dead(target)) continue;
    if (!first_attempt) {
      ++stats_.failovers;
      if (failovers_counter_ != nullptr) failovers_counter_->add();
    }
    first_attempt = false;

    Request response = endpoint_->irecv(target, kDataTagOffset + tag);
    ++stats_.requests_sent;
    if (requests_counter_ != nullptr) requests_counter_->add();
    endpoint_->isend(target, kRequestTag,
                     Payload::of({static_cast<double>(tag),
                                  static_cast<double>(seq)}));
    co_await response->done.wait();
    if (!response->aborted) {
      parent->message.envelope =
          simmpi::Envelope{src_virtual, virtual_rank_, tag};
      parent->message.payload = std::move(response->message.payload);
      parent->message.seq = response->message.seq;
      complete_request(*parent, engine());
      co_return;
    }
    // The contacted replica died before answering; ask the next one.
  }
  // No live replica can answer: the sender sphere is dead.
  parent->aborted = true;
  complete_request(*parent, engine());
}

void PullComm::serve_or_queue(Rank dst_virtual, int tag, std::uint64_t seq,
                              Rank requester) {
  const auto* buffer = out_buffers_.find(stream_key(dst_virtual, tag));
  if (buffer != nullptr && seq < buffer->size()) {
    ++stats_.responses_served;
    endpoint_->isend(requester, kDataTagOffset + tag, (*buffer)[seq]);
    return;
  }
  waiting_requests_[stream_key(dst_virtual, tag)].push_back(
      PendingRequest{requester, seq});
}

sim::Task PullComm::responder_loop() {
  for (;;) {
    Message request =
        co_await endpoint_->recv(simmpi::kAnySource, kRequestTag);
    if (dead(endpoint_->rank())) continue;  // the dead serve no one
    const auto values = request.payload.values();
    const int tag = static_cast<int>(values[0]);
    const auto seq = static_cast<std::uint64_t>(values[1]);
    const Rank requester = request.envelope.source;
    const Rank requester_virtual = map_->virtual_of(requester);
    serve_or_queue(requester_virtual, tag, seq, requester);
  }
}

}  // namespace redcr::red
