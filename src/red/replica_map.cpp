#include "red/replica_map.hpp"

#include <cmath>
#include <stdexcept>

#include "model/redundancy.hpp"

namespace redcr::red {

namespace {
/// Ceiling division for non-negative integers.
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }
}  // namespace

ReplicaMap::ReplicaMap(std::size_t num_virtual, double r) : degree_(r) {
  if (num_virtual == 0)
    throw std::invalid_argument("ReplicaMap: need at least one process");
  if (!(r >= 1.0) || !(r <= 8.0))
    throw std::invalid_argument("ReplicaMap: degree must be in [1, 8]");

  // Delegate the set sizes to the model's partition (Eqs. 5-8) so the
  // executable system and the analytic model can never disagree.
  const model::Partition part = model::partition_processes(num_virtual, r);

  // Spread the ⌈r⌉-degree spheres evenly from rank 0 (Bresenham): rank v is
  // high-degree iff ceil((v+1)·K/N) > ceil(v·K/N) with K = N_⌈r⌉. For
  // r = 1.5 this replicates exactly the even ranks, matching the paper.
  replicas_of_.resize(num_virtual);
  const std::size_t k = part.n_ceil_set;
  std::vector<unsigned> degrees(num_virtual, part.floor_degree);
  std::size_t assigned_high = 0;
  for (std::size_t v = 0; v < num_virtual; ++v) {
    if (ceil_div((v + 1) * k, num_virtual) > ceil_div(v * k, num_virtual)) {
      degrees[v] = part.ceil_degree;
      ++assigned_high;
    }
  }
  if (assigned_high != part.n_ceil_set)
    throw std::logic_error("ReplicaMap: Bresenham spread miscounted");

  // Primaries first...
  virtual_of_.reserve(part.total_procs);
  replica_index_of_.reserve(part.total_procs);
  for (std::size_t v = 0; v < num_virtual; ++v) {
    replicas_of_[v].push_back(static_cast<Rank>(v));
    virtual_of_.push_back(static_cast<Rank>(v));
    replica_index_of_.push_back(0);
  }
  // ...then extra replicas grouped by virtual rank.
  for (std::size_t v = 0; v < num_virtual; ++v) {
    for (unsigned i = 1; i < degrees[v]; ++i) {
      replicas_of_[v].push_back(static_cast<Rank>(virtual_of_.size()));
      virtual_of_.push_back(static_cast<Rank>(v));
      replica_index_of_.push_back(i);
    }
  }
  if (virtual_of_.size() != part.total_procs)
    throw std::logic_error("ReplicaMap: physical count mismatch with Eq. 8");
}

unsigned ReplicaMap::degree(Rank v) const {
  return static_cast<unsigned>(replicas(v).size());
}

std::span<const Rank> ReplicaMap::replicas(Rank v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= replicas_of_.size())
    throw std::out_of_range("ReplicaMap::replicas: virtual rank out of range");
  return replicas_of_[static_cast<std::size_t>(v)];
}

Rank ReplicaMap::virtual_of(Rank p) const {
  if (p < 0 || static_cast<std::size_t>(p) >= virtual_of_.size())
    throw std::out_of_range("ReplicaMap::virtual_of: rank out of range");
  return virtual_of_[static_cast<std::size_t>(p)];
}

unsigned ReplicaMap::replica_index(Rank p) const {
  if (p < 0 || static_cast<std::size_t>(p) >= replica_index_of_.size())
    throw std::out_of_range("ReplicaMap::replica_index: rank out of range");
  return replica_index_of_[static_cast<std::size_t>(p)];
}

}  // namespace redcr::red
