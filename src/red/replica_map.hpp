// Virtual-to-physical process mapping for (partial) redundancy.
//
// Implements the paper's partitioning (Eqs. 5-8): with degree r, N virtual
// processes split into N_⌊r⌋ spheres of ⌊r⌋ replicas and N_⌈r⌉ spheres of
// ⌈r⌉ replicas. Which virtual ranks get the higher degree follows the
// paper's convention "1.5x means every other (i.e. every even) process has a
// replica": higher-degree spheres are spread evenly starting at rank 0
// (Bresenham spacing).
//
// Physical layout: physical ranks [0, N) are replica 0 of virtual ranks
// [0, N); additional replicas occupy [N, N_total) grouped by virtual rank in
// ascending order. Each physical rank runs on its own node (assumption 2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "simmpi/types.hpp"

namespace redcr::red {

using simmpi::Rank;

class ReplicaMap {
 public:
  /// Builds the map for `num_virtual` processes at degree `r` in [1, 8].
  ReplicaMap(std::size_t num_virtual, double r);

  [[nodiscard]] std::size_t num_virtual() const noexcept {
    return replicas_of_.size();
  }
  [[nodiscard]] std::size_t num_physical() const noexcept {
    return virtual_of_.size();
  }
  [[nodiscard]] double requested_degree() const noexcept { return degree_; }

  /// Number of physical replicas of virtual rank `v`.
  [[nodiscard]] unsigned degree(Rank v) const;

  /// Physical ranks of virtual rank `v`'s sphere, replica index order.
  [[nodiscard]] std::span<const Rank> replicas(Rank v) const;

  /// Virtual rank that physical rank `p` belongs to.
  [[nodiscard]] Rank virtual_of(Rank p) const;

  /// Replica index of physical rank `p` within its sphere (0 = primary).
  [[nodiscard]] unsigned replica_index(Rank p) const;

 private:
  double degree_;
  std::vector<std::vector<Rank>> replicas_of_;  // virtual -> physical ranks
  std::vector<Rank> virtual_of_;                // physical -> virtual
  std::vector<unsigned> replica_index_of_;      // physical -> replica index
};

}  // namespace redcr::red
