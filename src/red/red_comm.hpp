// RedComm: the RedMPI-like redundancy interposition layer (paper Section 3).
//
// One RedComm instance exists per *physical* process; it presents the
// *virtual* world to the application (rank() is the virtual rank, size() the
// virtual world size) and translates every point-to-point call into the
// replica fan-out the paper describes:
//
//   send(dst, ...)  -> one physical send to every live replica of dst's
//                      sphere (all-to-all mode), or one full message to the
//                      paired replica plus hashes to the rest
//                      (msg-plus-hash mode);
//   recv(src, ...)  -> one physical receive from every replica of src's
//                      sphere; the request completes when all copies have
//                      arrived, the copies are compared (voting), and one
//                      payload is surfaced to the application.
//
// Wildcard receives (kAnySource) follow the paper's three-step protocol:
// the sphere's replica 0 posts the physical wildcard receive, determines the
// winning sender sphere, forwards the envelope to its sibling replicas, and
// everyone then posts specific receives for the remaining copies.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>

#include "obs/recorder.hpp"
#include "red/replica_map.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/world.hpp"
#include "util/flat_map.hpp"

namespace redcr::red {

/// Replication protocol mode (paper Section 2, RedMPI description).
enum class Mode {
  kAllToAll,     ///< every sender replica sends the full message to every
                 ///< receiver replica
  kMsgPlusHash,  ///< full message from the paired replica, 8-byte hashes
                 ///< from the others
};

struct RedConfig {
  Mode mode = Mode::kAllToAll;
  /// Compare replica copies on receive; mismatches are counted and, with
  /// three or more copies, outvoted.
  bool vote = true;
};

/// Liveness oracle consulted under live failure semantics (rMPI-style
/// degradation: survivors stop exchanging with dead replicas). Absent
/// (nullptr), the layer runs in the paper's bookkeeping mode — every
/// replica is treated as alive and the injector only watches for
/// whole-sphere deaths.
class Liveness {
 public:
  virtual ~Liveness() = default;
  [[nodiscard]] virtual bool is_dead(Rank physical) const = 0;
};

/// Counters for replica-divergence detection (SDC voting).
struct RedStats {
  std::uint64_t messages_compared = 0;
  std::uint64_t mismatches_detected = 0;
  std::uint64_t mismatches_corrected = 0;  ///< majority vote succeeded
  /// Deliveries that surfaced a silently corrupted payload without the vote
  /// observing any divergence (single-copy spheres, or every copy carrying
  /// the same strain): the infection passed the detector.
  std::uint64_t mismatches_undetected = 0;
};

/// Silent-data-corruption policy consulted by the interposition layer.
/// Implemented by failure::SdcMonitor (red/ cannot depend on failure/, so
/// this mirrors the Liveness-oracle pattern). All hooks are synchronous and
/// run inside the engine's event order, so a deterministic implementation
/// keeps the simulation bit-identical across reruns.
class SdcPolicy {
 public:
  /// Verdict of one voted delivery, reported after comparison.
  struct Delivery {
    Rank receiver_physical = -1;
    Rank receiver_virtual = -1;
    Rank sender_virtual = -1;
    /// Strain of the payload surfaced to the application (0 = clean).
    std::uint64_t chosen_strain = 0;
    /// First nonzero strain among the copies (0 = all clean).
    std::uint64_t seen_strain = 0;
    std::size_t copies = 0;  ///< copies compared (full + hash)
    bool mismatch = false;   ///< the vote observed divergent content
    bool corrected = false;  ///< a strict majority outvoted the divergence
    double now = 0.0;        ///< simulated time of the delivery
  };

  virtual ~SdcPolicy() = default;
  /// Called once per application-level send with the sender's physical
  /// rank; an at-rest-infected rank's payload comes back corrupted.
  virtual simmpi::Payload on_send(Rank sender_physical,
                                  simmpi::Payload payload, double now) = 0;
  /// Called per physical copy of the fan-out; may apply an in-flight flip.
  /// `ordinal` is the sender's deterministic send counter, `copy` the index
  /// within this send's live destination set.
  virtual simmpi::Payload on_copy(Rank sender_physical, std::uint64_t ordinal,
                                  int copy, simmpi::Payload payload,
                                  double now) = 0;
  /// Classification callback after voting: spreads silent infections,
  /// journals detection/correction, and raises the detection alarm.
  virtual void on_delivery(const Delivery& delivery) = 0;
};

class RedComm final : public simmpi::Comm {
 public:
  /// Binds the interposition layer of physical rank `physical_rank` to the
  /// physical world. `map` and `config` must outlive the RedComm.
  RedComm(simmpi::World& world, const ReplicaMap& map, Rank physical_rank,
          const RedConfig& config);

  /// Virtual rank presented to the application.
  [[nodiscard]] Rank rank() const noexcept override { return virtual_rank_; }
  /// Virtual world size presented to the application.
  [[nodiscard]] int size() const noexcept override {
    return static_cast<int>(map_->num_virtual());
  }
  [[nodiscard]] sim::Engine& engine() const noexcept override {
    return endpoint_->engine();
  }

  simmpi::Request isend(Rank dst, int tag, simmpi::Payload payload) override;
  simmpi::Request irecv(Rank src, int tag) override;

  [[nodiscard]] const RedStats& stats() const noexcept { return stats_; }
  [[nodiscard]] unsigned replica_index() const noexcept {
    return replica_index_;
  }
  [[nodiscard]] Rank physical_rank() const noexcept {
    return endpoint_->rank();
  }
  [[nodiscard]] const ReplicaMap& map() const noexcept { return *map_; }

  /// Deterministic corruption adapter: applied to every payload this
  /// physical process sends, before the seeded SDC policy. Kept as the thin
  /// compatibility shim for tests that corrupt a specific replica directly;
  /// production SDC injection goes through set_sdc().
  void set_corruption_hook(std::function<simmpi::Payload(simmpi::Payload)> f) {
    corruption_hook_ = std::move(f);
  }

  /// Attaches the seeded SDC policy (nullptr detaches; must outlive this
  /// RedComm). Drives in-flight copy flips, at-rest state corruption of the
  /// sender, and the post-vote detect/correct/silent classification.
  void set_sdc(SdcPolicy* sdc) { sdc_ = sdc; }

  /// Enables live failure semantics against the given oracle (must outlive
  /// this RedComm). Limitations: a wildcard receive whose sphere leader
  /// dies *mid-instance* is not failed over (real RedMPI shares this
  /// window); combined with coordinated checkpointing a dead rank cannot
  /// join the collective quiesce — use bookkeeping mode there, as the
  /// paper's experiments do.
  void set_liveness(const Liveness* liveness) { liveness_ = liveness; }

  /// Attaches an observability recorder (nullptr detaches). Feeds the
  /// "red.compared" / "red.mismatches_detected" / "red.mismatches_corrected"
  /// counters shared by all RedComms of a job.
  void set_recorder(obs::Recorder* recorder);

  /// Attaches an append-only log of voted-comparison timestamps, shared by
  /// every RedComm of a job (nullptr detaches; not owned). The fast-forward
  /// prototypes read messages_compared as of any simulated instant from it.
  void set_compared_log(std::vector<sim::Time>* log) noexcept {
    compared_log_ = log;
  }

 private:
  /// Tag offsets for the control plane (hash copies, envelope forwarding).
  /// Application and collective tags are < 2^28, so these bands are private.
  static constexpr int kHashTagOffset = 1 << 28;
  static constexpr int kEnvelopeTagOffset = 1 << 29;

  /// True if sender replica `sender_idx` sends the full message (rather
  /// than a hash) to receiver replica `receiver_idx`: the pairing is
  /// receiver_idx mod sender_degree.
  static bool sends_full(unsigned sender_idx, unsigned receiver_idx,
                         unsigned sender_degree, Mode mode) noexcept {
    if (mode == Mode::kAllToAll) return true;
    return sender_idx == receiver_idx % sender_degree;
  }

  /// Posts the physical receives for one copy-set from sphere `src_virtual`
  /// and wires them to complete `parent` after comparison/voting.
  void post_copy_set(Rank src_virtual, int tag, simmpi::Request parent);

  /// Driver for the wildcard three-step protocol (runs as a spawned task).
  sim::Task drive_wildcard(int tag, simmpi::Request parent);

  /// Compares/votes the collected copies and surfaces the result.
  void finish_copy_set(const std::vector<simmpi::Request>& subs,
                       Rank src_virtual, int tag, simmpi::Request parent);

  /// Votes over the copies (full payloads + hash copies), fills the parent's
  /// message with the chosen payload under the *virtual* envelope, and
  /// completes it.
  void finalize(Rank src_virtual, int tag, std::vector<simmpi::Message> copies,
                simmpi::Request parent);

  /// One in-flight copy-set: the physical sub-receives plus the completion
  /// countdown. Owned by the RedComm (not by the sub-requests' completion
  /// hooks) so a copy-set still pending at episode teardown is freed with
  /// the comm instead of leaking through a hook ⇄ sub-request ref cycle.
  struct CopySet {
    std::vector<simmpi::Request> subs;
    std::size_t remaining = 0;
  };

  simmpi::World* world_;
  const ReplicaMap* map_;
  const RedConfig* config_;
  simmpi::Endpoint* endpoint_;
  Rank virtual_rank_;
  unsigned replica_index_;
  RedStats stats_;
  std::function<simmpi::Payload(simmpi::Payload)> corruption_hook_;
  SdcPolicy* sdc_ = nullptr;
  /// Deterministic per-comm send counter: the in-flight flip coordinates.
  std::uint64_t send_ordinal_ = 0;
  const Liveness* liveness_ = nullptr;
  obs::Counter* compared_counter_ = nullptr;  // cached registry handles
  obs::Counter* detected_counter_ = nullptr;
  obs::Counter* corrected_counter_ = nullptr;
  std::vector<sim::Time>* compared_log_ = nullptr;  // fast-forward prototypes

  [[nodiscard]] bool dead(Rank physical) const {
    return liveness_ != nullptr && liveness_->is_dead(physical);
  }
  /// Per-tag serialization of the leader's wildcard protocol: the physical
  /// ANY_SOURCE receive of instance k+1 may only be posted after instance k
  /// has posted its remaining-copy receives — otherwise instance k+1 could
  /// steal a duplicate copy of instance k's message (see drive_wildcard).
  util::FlatMap64<std::shared_ptr<sim::OneShotEvent>> wildcard_turn_;  // by tag
  /// In-flight copy-sets (stable iterators; erased as each one finishes).
  std::list<CopySet> copy_sets_;
};

}  // namespace redcr::red
