#include "failure/sdc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

namespace redcr::failure {

SdcMonitor::SdcMonitor(const red::ReplicaMap& map, const FaultProcess& faults,
                       std::uint64_t episode)
    : map_(&map),
      faults_(&faults),
      episode_(episode),
      strain_of_(map.num_physical(), 0),
      cause_of_(map.num_physical(), 0) {}

void SdcMonitor::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  if (recorder == nullptr) {
    injected_counter_ = nullptr;
    detected_counter_ = nullptr;
    corrected_counter_ = nullptr;
    undetected_counter_ = nullptr;
    infections_counter_ = nullptr;
    return;
  }
  injected_counter_ = &recorder->metrics().counter("red.sdc.injected");
  detected_counter_ = &recorder->metrics().counter("red.sdc.detected");
  corrected_counter_ = &recorder->metrics().counter("red.sdc.corrected");
  undetected_counter_ = &recorder->metrics().counter("red.sdc.undetected");
  infections_counter_ = &recorder->metrics().counter("red.sdc.infections");
}

void SdcMonitor::seed(const std::vector<InfectionRecord>& infections) {
  for (const InfectionRecord& record : infections) {
    if (record.rank < 0 ||
        static_cast<std::size_t>(record.rank) >= strain_of_.size())
      continue;
    const auto idx = static_cast<std::size_t>(record.rank);
    if (strain_of_[idx] != 0) continue;
    strain_of_[idx] = record.strain;
    cause_of_[idx] = record.cause;
    ++infected_count_;
    // The original injection predates this episode; anchor its origin at
    // the episode start so latency stays well-defined (and conservative).
    origins_.emplace(record.strain, Origin{0.0, record.cause});
  }
}

bool SdcMonitor::infect(int rank, std::uint64_t strain, std::uint64_t cause,
                        double /*now*/) {
  const auto idx = static_cast<std::size_t>(rank);
  if (strain_of_[idx] != 0) return false;  // first strain wins
  strain_of_[idx] = strain;
  cause_of_[idx] = cause;
  ++infected_count_;
  ++stats_.infected_ranks;
  if (infections_counter_ != nullptr) infections_counter_->add();
  return true;
}

SdcMonitor::Origin SdcMonitor::origin_of(std::uint64_t strain) const {
  const auto it = origins_.find(strain);
  return it != origins_.end() ? it->second : Origin{};
}

std::uint64_t SdcMonitor::journal_event(const char* type, int rank, double t,
                                        std::uint64_t cause,
                                        const char* detail) {
  if (journal_ == nullptr) return 0;
  obs::Journal::Event ev;
  ev.t = t;
  ev.type = type;
  ev.cause = cause;
  ev.episode = static_cast<int>(episode_);
  ev.rank = rank;
  ev.sphere = static_cast<int>(map_->virtual_of(rank));
  if (detail != nullptr) ev.detail = detail;
  return journal_->append(std::move(ev));
}

sim::Task SdcMonitor::run(sim::Engine& engine) {
  // Oracle-drawn first-infection time per rank; walk them in order. The
  // draws are pure functions of (seed, episode, rank), so the schedule is
  // independent of event interleaving.
  std::vector<double> times(strain_of_.size());
  std::vector<std::size_t> order;
  for (std::size_t p = 0; p < times.size(); ++p) {
    times[p] = faults_->sdc_infection_time(episode_, static_cast<int>(p));
    if (std::isfinite(times[p])) order.push_back(p);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return times[a] != times[b] ? times[a] < times[b] : a < b;
  });

  for (const std::size_t p : order) {
    if (times[p] > engine.now())
      co_await sim::delay(engine, times[p] - engine.now());
    const auto rank = static_cast<int>(p);
    if (strain_of_[p] != 0) continue;  // spread got there first
    const std::uint64_t strain =
        faults_->sdc_strain(FaultClass::kSdcAtRest, episode_, p, 0);
    ++stats_.injected_atrest;
    if (injected_counter_ != nullptr) injected_counter_->add();
    if (recorder_ != nullptr) {
      recorder_->instant("sdc-injected", "failure", obs::rank_pid(rank),
                         engine.now());
    }
    // The root-fault event: detections, corrections, invalidated
    // checkpoints, and the rollback's rework/restart all chain to this id.
    const std::uint64_t cause = journal_event("sdc-injected", rank,
                                              engine.now(), 0, "kind=at-rest");
    origins_.emplace(strain, Origin{engine.now(), cause});
    infect(rank, strain, cause, engine.now());
  }
}

simmpi::Payload SdcMonitor::on_send(red::Rank sender_physical,
                                    simmpi::Payload payload, double /*now*/) {
  const std::uint64_t strain =
      strain_of_[static_cast<std::size_t>(sender_physical)];
  if (strain == 0) return payload;
  return payload.corrupted(strain);
}

simmpi::Payload SdcMonitor::on_copy(red::Rank sender_physical,
                                    std::uint64_t ordinal, int copy,
                                    simmpi::Payload payload, double now) {
  if (!faults_->sdc_flips_copy(episode_, sender_physical, ordinal, copy))
    return payload;
  const std::uint64_t who =
      (static_cast<std::uint64_t>(sender_physical) << 16) |
      static_cast<std::uint64_t>(copy & 0xFFFF);
  const std::uint64_t strain =
      faults_->sdc_strain(FaultClass::kSdcInFlight, episode_, who, ordinal);
  ++stats_.injected_inflight;
  if (injected_counter_ != nullptr) injected_counter_->add();
  const std::uint64_t cause = journal_event(
      "sdc-injected", sender_physical, now, 0, "kind=in-flight");
  origins_.emplace(strain, Origin{now, cause});
  return payload.corrupted(strain);
}

void SdcMonitor::on_delivery(const Delivery& d) {
  // Divergence without any strain is the legacy test corruption hook at
  // work — not this fault model's business.
  if (d.seen_strain == 0) return;
  if (d.mismatch) {
    if (d.corrected) {
      ++stats_.corrected_deliveries;
      if (corrected_counter_ != nullptr) corrected_counter_->add();
      if (journal_ != nullptr &&
          corrected_journaled_.insert(d.seen_strain).second) {
        // Once per strain: a continuously outvoted replica re-corrects on
        // every message and would flood the journal otherwise.
        journal_event("sdc-corrected", d.receiver_physical, d.now,
                      origin_of(d.seen_strain).event, nullptr);
      }
      if (d.chosen_strain != 0) {
        // The strict majority itself was tainted (a consistently infected
        // sender pair): the "correction" still delivered corrupt data.
        const Origin origin = origin_of(d.chosen_strain);
        if (infect(d.receiver_physical, d.chosen_strain, origin.event,
                   d.now)) {
          journal_event("sdc-undetected", d.receiver_physical, d.now,
                        origin.event, nullptr);
        }
      }
      return;
    }
    // Detected but uncorrectable (dual redundancy: one-vs-one). The first
    // one ends the episode; simultaneous detections at the stop timestamp
    // only count.
    ++stats_.detections;
    if (detected_counter_ != nullptr) detected_counter_->add();
    if (!detection_) {
      const Origin origin = origin_of(d.seen_strain);
      SdcDetection det;
      det.time = d.now;
      det.rank = d.receiver_physical;
      det.strain = d.seen_strain;
      det.injection_event = origin.event;
      det.latency = std::max(0.0, d.now - origin.time);
      det.detection_event = journal_event("sdc-detected", d.receiver_physical,
                                          d.now, origin.event, nullptr);
      detection_ = det;
      if (alarm_) alarm_(*detection_);
    }
    return;
  }
  // No divergence observed, yet the surfaced payload is tainted: the
  // detector was blind (r=1 sphere or consistent infection). A clean chosen
  // copy with voting off is not a delivery of corrupt data — skip it.
  if (d.chosen_strain == 0) return;
  ++stats_.undetected_deliveries;
  if (undetected_counter_ != nullptr) undetected_counter_->add();
  const Origin origin = origin_of(d.chosen_strain);
  if (infect(d.receiver_physical, d.chosen_strain, origin.event, d.now)) {
    journal_event("sdc-undetected", d.receiver_physical, d.now, origin.event,
                  nullptr);
  }
}

std::vector<InfectionRecord> SdcMonitor::snapshot_infections() const {
  std::vector<InfectionRecord> out;
  for (std::size_t p = 0; p < strain_of_.size(); ++p) {
    if (strain_of_[p] == 0) continue;
    out.push_back(InfectionRecord{static_cast<int>(p), strain_of_[p],
                                  cause_of_[p]});
  }
  return out;
}

}  // namespace redcr::failure
