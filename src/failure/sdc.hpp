// Silent-data-corruption injection and epidemic tracking.
//
// The paper's Msg-plus-hash and triple-voting modes (src/red/) are SDC
// *detectors*: they observe replica divergence, not wrongness. This module
// supplies the matching *fault* model, driven by the seeded FaultProcess
// oracle so every draw is a pure function of its coordinates:
//
//   in-flight  one physical copy of one send is flipped on the wire
//              (transient: the sender's state stays clean). Detected
//              immediately when the receiving copy-set holds >= 2 copies;
//              silently infects the receiver otherwise.
//   at-rest    a rank's state is infected at an exponential first-infection
//              time; every payload it sends from then on carries its strain.
//              Divergence exists only against clean sibling replicas, so an
//              infection of an r=1 sphere — or one that spreads through a
//              full sphere consistently — passes every vote silently.
//
// Each corruption carries a *strain*: a deterministic identifier of the
// injection event. Copies tainted by the same strain stay bitwise
// consistent (no false divergence), clean vs. tainted and cross-strain
// copies hash apart. A tainted payload that survives voting infects the
// receiving rank — that is how an undetected infection spreads and how it
// ends up inside checkpoint images (ckpt::Generation records the live
// infections at publish; restoring such an *unverified* image resurrects
// them through SdcMonitor::seed()).
//
// Detection semantics (on_delivery):
//   mismatch + strict majority  ->  corrected; execution continues (triple
//                                   redundancy votes the bad copy out)
//   mismatch, no majority       ->  detected-uncorrectable; the alarm ends
//                                   the episode and the executor rolls back
//                                   to the last *verified* checkpoint
//   no mismatch, tainted        ->  the detector was blind; the receiver is
//                                   silently infected
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "failure/faults.hpp"
#include "obs/journal.hpp"
#include "obs/recorder.hpp"
#include "red/red_comm.hpp"
#include "red/replica_map.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace redcr::failure {

/// One persistent rank infection as recorded inside a checkpoint
/// generation: restoring an unverified image resurrects it.
struct InfectionRecord {
  int rank = -1;
  std::uint64_t strain = 0;
  /// Journal id of the original sdc-injected event (0 without a journal);
  /// preserved across episodes so later detections still chain to the root.
  std::uint64_t cause = 0;
};

/// The first uncorrectable divergence of an episode; handed to the alarm so
/// the executor can end the episode and roll back with an SDC root cause.
struct SdcDetection {
  double time = 0.0;  ///< engine-local detection time
  int rank = -1;      ///< receiver physical rank whose vote detected it
  std::uint64_t strain = 0;
  std::uint64_t injection_event = 0;  ///< root cause (sdc-injected id)
  std::uint64_t detection_event = 0;  ///< the sdc-detected journal id
  /// Detection time minus injection time (0-based for infections restored
  /// from an unverified checkpoint, whose injection predates the episode).
  double latency = 0.0;
};

/// Lifetime counters of one episode's monitor.
struct SdcStats {
  std::uint64_t injected_inflight = 0;
  std::uint64_t injected_atrest = 0;
  /// Uncorrectable strain-involved mismatches observed (>= 1 per rollback;
  /// simultaneous detections at the stop timestamp all count).
  std::uint64_t detections = 0;
  std::uint64_t corrected_deliveries = 0;   ///< majority outvoted a strain
  std::uint64_t undetected_deliveries = 0;  ///< tainted payload passed voting
  std::uint64_t infected_ranks = 0;         ///< state infections (incl. spread)
};

/// Per-episode SDC state: injection (via the oracle), rank infection
/// tracking, and the post-vote classification consulted by every RedComm.
class SdcMonitor final : public red::SdcPolicy {
 public:
  /// `map` and `faults` must outlive the monitor; `episode` salts every
  /// oracle draw so reruns and sweep workers stay bit-identical.
  SdcMonitor(const red::ReplicaMap& map, const FaultProcess& faults,
             std::uint64_t episode);

  /// Attaches an observability recorder (nullptr detaches): feeds the
  /// "red.sdc.injected" / "red.sdc.detected" / "red.sdc.corrected" /
  /// "red.sdc.undetected" / "red.sdc.infections" counters.
  void set_recorder(obs::Recorder* recorder);
  void set_journal(obs::Journal* journal) { journal_ = journal; }
  /// Raised once, on the episode's first uncorrectable detection.
  void set_alarm(std::function<void(const SdcDetection&)> alarm) {
    alarm_ = std::move(alarm);
  }

  /// Resurrects infections recorded in a restored unverified checkpoint.
  /// Must run before the episode's first send.
  void seed(const std::vector<InfectionRecord>& infections);

  /// Background at-rest injector: walks the oracle's per-rank first
  /// infection times in order and infects each rank as its time arrives.
  /// Spawn once per episode when sdc().atrest_rate > 0.
  sim::Task run(sim::Engine& engine);

  // red::SdcPolicy
  simmpi::Payload on_send(red::Rank sender_physical, simmpi::Payload payload,
                          double now) override;
  simmpi::Payload on_copy(red::Rank sender_physical, std::uint64_t ordinal,
                          int copy, simmpi::Payload payload,
                          double now) override;
  void on_delivery(const Delivery& delivery) override;

  [[nodiscard]] const SdcStats& stats() const noexcept { return stats_; }
  /// True while any rank's state carries an infection — the controller
  /// consults this at checkpoint publish to set the verified bit.
  [[nodiscard]] bool any_infected() const noexcept {
    return infected_count_ > 0;
  }
  /// The live infections, rank-ordered (recorded into each Generation).
  [[nodiscard]] std::vector<InfectionRecord> snapshot_infections() const;
  /// The episode-ending detection, if one fired.
  [[nodiscard]] const std::optional<SdcDetection>& detection() const noexcept {
    return detection_;
  }

 private:
  /// Where a strain came from: injection time + journal event id.
  struct Origin {
    double time = 0.0;
    std::uint64_t event = 0;
  };

  /// Marks `rank` infected (first strain wins); returns true when newly
  /// infected.
  bool infect(int rank, std::uint64_t strain, std::uint64_t cause, double now);
  [[nodiscard]] Origin origin_of(std::uint64_t strain) const;
  std::uint64_t journal_event(const char* type, int rank, double t,
                              std::uint64_t cause, const char* detail);

  const red::ReplicaMap* map_;
  const FaultProcess* faults_;
  std::uint64_t episode_;
  /// Per physical rank: the infecting strain (0 = clean).
  std::vector<std::uint64_t> strain_of_;
  std::vector<std::uint64_t> cause_of_;
  int infected_count_ = 0;
  std::map<std::uint64_t, Origin> origins_;
  /// Strains whose correction was already journalled (a continuously
  /// outvoted replica would otherwise flood the journal every message).
  std::set<std::uint64_t> corrected_journaled_;
  SdcStats stats_;
  std::optional<SdcDetection> detection_;
  std::function<void(const SdcDetection&)> alarm_;
  obs::Recorder* recorder_ = nullptr;
  obs::Journal* journal_ = nullptr;
  obs::Counter* injected_counter_ = nullptr;
  obs::Counter* detected_counter_ = nullptr;
  obs::Counter* corrected_counter_ = nullptr;
  obs::Counter* undetected_counter_ = nullptr;
  obs::Counter* infections_counter_ = nullptr;
};

}  // namespace redcr::failure
