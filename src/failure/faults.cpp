#include "failure/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace redcr::failure {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("redcr::failure: " + what);
}

void check_prob(double p, const char* name) {
  // !(p >= 0 && p <= 1) also catches NaN.
  if (!(p >= 0.0 && p <= 1.0)) {
    reject(std::string(name) + " must be in [0, 1], got " + std::to_string(p));
  }
}

}  // namespace

void CkptFaultParams::validate() const {
  check_prob(write_failure_prob, "write_failure_prob");
  check_prob(corruption_prob, "corruption_prob");
  check_prob(restart_failure_prob, "restart_failure_prob");
}

void SdcParams::validate() const {
  check_prob(inflight_prob, "sdc.inflight_prob");
  if (!(atrest_rate >= 0.0) || std::isinf(atrest_rate)) {
    reject("sdc.atrest_rate must be finite and >= 0, got " +
           std::to_string(atrest_rate));
  }
}

double RetryPolicy::delay_before(int attempt) const noexcept {
  if (attempt <= 0) return 0.0;
  // backoff_base * 2^(attempt-1), capped; ldexp avoids overflow for the
  // doubling itself (the min() clamps long before it matters).
  double raw = std::ldexp(backoff_base, std::min(attempt - 1, 60));
  return std::min(raw, backoff_cap);
}

void RetryPolicy::validate(const char* what) const {
  if (max_attempts < 1) {
    reject(std::string(what) + ".max_attempts must be >= 1, got " +
           std::to_string(max_attempts));
  }
  if (!(backoff_base >= 0.0)) {
    reject(std::string(what) + ".backoff_base must be >= 0, got " +
           std::to_string(backoff_base));
  }
  if (!(backoff_cap >= 0.0)) {
    reject(std::string(what) + ".backoff_cap must be >= 0, got " +
           std::to_string(backoff_cap));
  }
}

FaultProcess::FaultProcess(CkptFaultParams params) : params_(params) {
  params_.validate();
}

FaultProcess::FaultProcess(CkptFaultParams params, SdcParams sdc)
    : params_(params), sdc_(sdc) {
  params_.validate();
  sdc_.validate();
}

double FaultProcess::draw(FaultClass cls, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) const noexcept {
  return util::Xoshiro256ss(params_.seed)
      .split(static_cast<std::uint64_t>(cls))
      .split(a)
      .split(b)
      .split(c)
      .uniform01();
}

double FaultProcess::sdc_draw(FaultClass cls, std::uint64_t a, std::uint64_t b,
                              std::uint64_t c) const noexcept {
  return util::Xoshiro256ss(sdc_.seed)
      .split(static_cast<std::uint64_t>(cls))
      .split(a)
      .split(b)
      .split(c)
      .uniform01();
}

bool FaultProcess::write_fails(std::uint64_t episode, int epoch, int rank,
                               int attempt) const noexcept {
  if (params_.write_failure_prob <= 0.0) return false;
  // Fold (rank, attempt) into one salt so each attempt has a fresh stream.
  std::uint64_t who = (static_cast<std::uint64_t>(rank) << 16) |
                      static_cast<std::uint64_t>(attempt & 0xFFFF);
  return draw(FaultClass::kWriteFailure, episode,
              static_cast<std::uint64_t>(epoch), who) <
         params_.write_failure_prob;
}

bool FaultProcess::image_corrupts(std::uint64_t episode, int epoch,
                                  int rank) const noexcept {
  if (params_.corruption_prob <= 0.0) return false;
  return draw(FaultClass::kImageCorruption, episode,
              static_cast<std::uint64_t>(epoch),
              static_cast<std::uint64_t>(rank)) < params_.corruption_prob;
}

bool FaultProcess::restart_fails(std::uint64_t restart_index,
                                 int attempt) const noexcept {
  if (params_.restart_failure_prob <= 0.0) return false;
  return draw(FaultClass::kRestartFailure, restart_index,
              static_cast<std::uint64_t>(attempt), 0) <
         params_.restart_failure_prob;
}

bool FaultProcess::level_write_fails(int level, double prob,
                                     std::uint64_t episode, int epoch,
                                     int rank, int attempt) const noexcept {
  if (prob <= 0.0) return false;
  // Fold (level, rank, attempt) into one salt; 16 bits each keeps the
  // coordinates disjoint for any realistic world size / retry budget.
  std::uint64_t who = (static_cast<std::uint64_t>(level) << 32) |
                      (static_cast<std::uint64_t>(rank) << 16) |
                      static_cast<std::uint64_t>(attempt & 0xFFFF);
  return draw(FaultClass::kLevelWriteFailure, episode,
              static_cast<std::uint64_t>(epoch), who) < prob;
}

bool FaultProcess::sdc_flips_copy(std::uint64_t episode, int sender_rank,
                                  std::uint64_t ordinal,
                                  int copy) const noexcept {
  if (sdc_.inflight_prob <= 0.0) return false;
  // Fold (rank, copy) into one salt; the send ordinal keeps its own slot so
  // long-running ranks never alias earlier sends.
  std::uint64_t who = (static_cast<std::uint64_t>(sender_rank) << 16) |
                      static_cast<std::uint64_t>(copy & 0xFFFF);
  return sdc_draw(FaultClass::kSdcInFlight, episode, who, ordinal) <
         sdc_.inflight_prob;
}

double FaultProcess::sdc_infection_time(std::uint64_t episode,
                                        int rank) const noexcept {
  if (sdc_.atrest_rate <= 0.0) return std::numeric_limits<double>::infinity();
  auto rng = util::Xoshiro256ss(sdc_.seed)
                 .split(static_cast<std::uint64_t>(FaultClass::kSdcAtRest))
                 .split(episode)
                 .split(static_cast<std::uint64_t>(rank));
  return rng.exponential(1.0 / sdc_.atrest_rate);
}

std::uint64_t FaultProcess::sdc_strain(FaultClass cls, std::uint64_t episode,
                                       std::uint64_t a,
                                       std::uint64_t b) const noexcept {
  std::uint64_t strain = util::Xoshiro256ss(sdc_.seed)
                             .split(static_cast<std::uint64_t>(cls))
                             .split(episode)
                             .split(a)
                             .split(b)
                             .next();
  return strain != 0 ? strain : 1;  // strain 0 means "clean"
}

bool FaultProcess::level_image_corrupts(int level, double prob,
                                        std::uint64_t episode, int epoch,
                                        int rank) const noexcept {
  if (prob <= 0.0) return false;
  std::uint64_t who = (static_cast<std::uint64_t>(level) << 32) |
                      static_cast<std::uint64_t>(rank);
  return draw(FaultClass::kLevelCorruption, episode,
              static_cast<std::uint64_t>(epoch), who) < prob;
}

}  // namespace redcr::failure
