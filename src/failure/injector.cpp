#include "failure/injector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace redcr::failure {

SphereMonitor::SphereMonitor(const red::ReplicaMap& map)
    : map_(&map),
      dead_(map.num_physical(), false),
      alive_in_sphere_(map.num_virtual()) {
  for (std::size_t v = 0; v < map.num_virtual(); ++v)
    alive_in_sphere_[v] = map.degree(static_cast<Rank>(v));
}

bool SphereMonitor::mark_dead(Rank physical) {
  if (physical < 0 || static_cast<std::size_t>(physical) >= dead_.size())
    throw std::out_of_range("SphereMonitor::mark_dead: rank out of range");
  auto idx = static_cast<std::size_t>(physical);
  if (dead_[idx]) return false;  // already dead; idempotent
  dead_[idx] = true;
  ++dead_count_;
  const Rank sphere = map_->virtual_of(physical);
  auto& alive = alive_in_sphere_[static_cast<std::size_t>(sphere)];
  assert(alive > 0);
  if (--alive == 0) {
    if (!dead_sphere_) dead_sphere_ = sphere;
    return true;
  }
  return false;
}

bool SphereMonitor::is_dead(Rank physical) const {
  if (physical < 0 || static_cast<std::size_t>(physical) >= dead_.size())
    throw std::out_of_range("SphereMonitor::is_dead: rank out of range");
  return dead_[static_cast<std::size_t>(physical)];
}

bool SphereMonitor::sphere_dead(Rank virtual_rank) const {
  if (virtual_rank < 0 ||
      static_cast<std::size_t>(virtual_rank) >= alive_in_sphere_.size())
    throw std::out_of_range("SphereMonitor::sphere_dead: rank out of range");
  return alive_in_sphere_[static_cast<std::size_t>(virtual_rank)] == 0;
}

void FailureParams::validate() const {
  // !(x > 0) also catches NaN.
  if (!(node_mtbf > 0.0))
    throw std::invalid_argument(
        "redcr::failure::FailureParams: node_mtbf must be > 0 s, got " +
        std::to_string(node_mtbf));
  if (!(weibull_shape > 0.0))
    throw std::invalid_argument(
        "redcr::failure::FailureParams: weibull_shape must be > 0, got " +
        std::to_string(weibull_shape));
}

FailureInjector::FailureInjector(const red::ReplicaMap& map,
                                 FailureParams params)
    : map_(&map), params_(params) {
  params_.validate();
}

std::vector<sim::Time> FailureInjector::draw_failure_times(
    std::uint64_t episode) const {
  util::Xoshiro256ss root(params_.seed);
  util::Xoshiro256ss episode_stream = root.split(episode);
  // Weibull with mean θ: scale λ = θ / Γ(1 + 1/k); draw λ(-ln(1-u))^{1/k}.
  // For k = 1 this is exactly the exponential inverse CDF.
  const double k = params_.weibull_shape;
  const double scale = params_.node_mtbf / std::tgamma(1.0 + 1.0 / k);
  std::vector<sim::Time> times(map_->num_physical());
  for (std::size_t p = 0; p < times.size(); ++p) {
    // Independent per-node stream: results do not depend on how many draws
    // other nodes consume.
    util::Xoshiro256ss node_stream = episode_stream.split(p);
    const double u = node_stream.uniform01();
    times[p] = scale * std::pow(-std::log1p(-u), 1.0 / k);
  }
  return times;
}

std::optional<JobFailure> FailureInjector::first_sphere_death(
    const red::ReplicaMap& map, const std::vector<sim::Time>& times) {
  assert(times.size() == map.num_physical());
  std::optional<JobFailure> earliest;
  for (std::size_t v = 0; v < map.num_virtual(); ++v) {
    // A sphere dies when its *last* replica dies.
    sim::Time death = 0.0;
    for (const Rank p : map.replicas(static_cast<Rank>(v)))
      death = std::max(death, times[static_cast<std::size_t>(p)]);
    if (!earliest || death < earliest->time)
      earliest = JobFailure{death, static_cast<Rank>(v)};
  }
  return earliest;
}

sim::Task FailureInjector::run(sim::Engine& engine, SphereMonitor& monitor,
                               std::uint64_t episode,
                               std::function<bool()> protected_phase,
                               std::function<void(JobFailure)> on_job_failure,
                               std::function<void(Rank)> on_replica_death) {
  // Sort upcoming failures by time; walk them in order.
  const std::vector<sim::Time> times = draw_failure_times(episode);
  std::vector<std::size_t> order(times.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return times[a] != times[b] ? times[a] < times[b] : a < b;
  });

  // Granularity of the "wait for the protected phase to end" poll; far
  // below any checkpoint duration, far above the network timescale.
  constexpr sim::Time kPhasePoll = 0.25;

  for (const std::size_t p : order) {
    const sim::Time when = times[p];
    if (when > engine.now())
      co_await sim::delay(engine, when - engine.now());
    if (!params_.inject_during_checkpoint && protected_phase) {
      // Paper Section 6 (observation 5): the experiments do not trigger
      // failures while a checkpoint is in progress; defer to phase end.
      const bool deferred = protected_phase();
      while (protected_phase()) co_await sim::delay(engine, kPhasePoll);
      if (deferred && recorder_ != nullptr)
        recorder_->add("failure.deferred");
    }
    const bool sphere_died = monitor.mark_dead(static_cast<Rank>(p));
    if (recorder_ != nullptr) {
      recorder_->instant("replica-death", "failure",
                         obs::rank_pid(static_cast<int>(p)), engine.now());
      recorder_->add("failure.replica_deaths");
    }
    if (journal_ != nullptr) {
      obs::Journal::Event ev;
      ev.t = engine.now();
      ev.type = "replica-death";
      ev.episode = static_cast<int>(episode);
      ev.rank = static_cast<int>(p);
      journal_->append(std::move(ev));
    }
    if (on_replica_death) on_replica_death(static_cast<Rank>(p));
    if (sphere_died) {
      const Rank sphere = map_->virtual_of(static_cast<Rank>(p));
      if (recorder_ != nullptr) {
        recorder_->instant("sphere-death", "failure", obs::kJobPid,
                           engine.now());
        recorder_->add("failure.sphere_deaths");
      }
      // The root-fault event: its id is the cause everything this failure
      // triggers (restart, rework, lost flushes, abort) is billed to.
      std::uint64_t cause = 0;
      if (journal_ != nullptr) {
        obs::Journal::Event ev;
        ev.t = engine.now();
        ev.type = "sphere-death";
        ev.episode = static_cast<int>(episode);
        ev.rank = static_cast<int>(p);
        ev.sphere = static_cast<int>(sphere);
        cause = journal_->append(std::move(ev));
      }
      on_job_failure(JobFailure{engine.now(), sphere, cause});
      co_return;  // the job is down; this episode is over
    }
  }
}

}  // namespace redcr::failure
