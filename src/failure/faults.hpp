// Checkpoint/restart fault taxonomy (beyond the paper's fail-stop nodes).
//
// The paper's model assumes the C/R pipeline itself is perfect: every image
// write succeeds, the latest checkpoint always restores, and restart phases
// never fail. Production systems (LLNL's SCR is the blueprint) see three
// more fault classes, modeled here:
//
//   kWriteFailure     an image write to stable storage fails and the writer
//                     notices immediately (I/O error) — retried with capped
//                     exponential backoff by the CheckpointController
//   kImageCorruption  an image is written "successfully" but is corrupt;
//                     detected only at restart-time validation — the
//                     CheckpointStore then falls back to generation N-1,
//                     N-2, ... (the motivation for retention depth > 1)
//   kRestartFailure   the restart phase itself fails (relaunch/process
//                     failure) — retried by the JobExecutor; exhausted
//                     retries end the job in a structured JobAbort
//
// Determinism: FaultProcess is a pure oracle. Every query derives a fresh
// RNG stream from (seed, fault class, indices) via Xoshiro splits, so the
// answer is a function of the coordinates alone — independent of call
// order, engine interleaving, and sweep worker count (`--jobs`).
#pragma once

#include <cstdint>

namespace redcr::failure {

/// The unreliable-C/R fault classes (see file comment).
enum class FaultClass : std::uint64_t {
  kWriteFailure = 1,
  kImageCorruption = 2,
  kRestartFailure = 3,
  /// Per-storage-level variants of write failure / latent corruption for
  /// the multi-level hierarchy: same fault physics, but each level has its
  /// own probability (carried in ckpt::LevelParams, passed to the draw) and
  /// its own stream, salted with the level index.
  kLevelWriteFailure = 4,
  kLevelCorruption = 5,
  /// Silent data corruption, the paper's Msg-plus-hash/voting target: a
  /// payload flipped on the wire (one physical copy of one send) or a rank's
  /// state silently infected at rest. Neither is visible to the C/R pipeline
  /// — only replica voting can observe the divergence.
  kSdcInFlight = 6,
  kSdcAtRest = 7,
};

/// Probabilities of the three C/R fault classes. All default to 0, which is
/// bit-identical to the reliable pre-fault pipeline.
struct CkptFaultParams {
  /// Probability one image-write *attempt* fails visibly (per rank, per
  /// checkpoint epoch, per attempt).
  double write_failure_prob = 0.0;
  /// Probability a committed image is latently corrupt (per rank per
  /// checkpoint epoch; detected only at restart-time validation).
  double corruption_prob = 0.0;
  /// Probability one restart *attempt* fails (per job failure, per attempt).
  double restart_failure_prob = 0.0;
  /// Root seed of the fault streams; independent of FailureParams::seed so
  /// the node-failure schedule is unchanged when faults are enabled.
  std::uint64_t seed = 1097;

  /// True when any fault class can actually fire.
  [[nodiscard]] bool enabled() const noexcept {
    return write_failure_prob > 0.0 || corruption_prob > 0.0 ||
           restart_failure_prob > 0.0;
  }

  /// Rejects NaN and out-of-range probabilities with a one-line
  /// std::invalid_argument naming the offending knob.
  void validate() const;
};

/// Silent-data-corruption injection knobs. Both default to 0, which keeps
/// every code path bit-identical to the SDC-free pipeline.
struct SdcParams {
  /// Probability one *physical copy* of one send is flipped on the wire
  /// (per sender rank, per send, per replica copy). Transient: only that
  /// copy is wrong; the sender's state stays clean.
  double inflight_prob = 0.0;
  /// Per-physical-rank rate (infections per second of episode time) of
  /// at-rest state corruption. The first infection time of each rank is an
  /// exponential draw; once infected, every payload the rank sends carries
  /// its strain until the episode ends (a rollback restores clean state, a
  /// restore from an unverified checkpoint resurrects the infection).
  double atrest_rate = 0.0;
  /// Root seed of the SDC streams; independent of the C/R fault seed and of
  /// FailureParams::seed so enabling SDC changes neither schedule.
  std::uint64_t seed = 4243;

  [[nodiscard]] bool enabled() const noexcept {
    return inflight_prob > 0.0 || atrest_rate > 0.0;
  }

  /// Rejects NaN/out-of-range knobs with a one-line std::invalid_argument.
  void validate() const;
};

/// Capped exponential backoff: attempt 0 runs immediately, attempt k waits
/// min(backoff_base * 2^(k-1), backoff_cap) seconds first.
struct RetryPolicy {
  int max_attempts = 4;       ///< total attempts, including the first
  double backoff_base = 1.0;  ///< delay before the second attempt, seconds
  double backoff_cap = 60.0;  ///< upper bound on any single backoff delay

  /// Backoff delay inserted before the given attempt (0 for the first).
  [[nodiscard]] double delay_before(int attempt) const noexcept;

  /// Rejects non-positive attempt counts and NaN/negative delays; `what`
  /// names the policy in the error message (e.g. "ckpt_write_retry").
  void validate(const char* what) const;
};

/// Deterministic fault oracle over CkptFaultParams (see file comment).
class FaultProcess {
 public:
  /// Validates `params` (throws std::invalid_argument).
  explicit FaultProcess(CkptFaultParams params);

  /// Same, with SDC injection enabled (both are validated).
  FaultProcess(CkptFaultParams params, SdcParams sdc);

  /// Does this image-write attempt fail visibly?
  [[nodiscard]] bool write_fails(std::uint64_t episode, int epoch, int rank,
                                 int attempt) const noexcept;

  /// Is this committed image latently corrupt?
  [[nodiscard]] bool image_corrupts(std::uint64_t episode, int epoch,
                                    int rank) const noexcept;

  /// Does this restart attempt fail?
  [[nodiscard]] bool restart_fails(std::uint64_t restart_index,
                                   int attempt) const noexcept;

  /// Hierarchy variant of write_fails: `prob` is the level's own
  /// write-failure probability (ckpt::LevelParams carries it; this oracle
  /// only supplies the deterministic stream). The stream is salted with the
  /// level index so levels fail independently at the same coordinates.
  [[nodiscard]] bool level_write_fails(int level, double prob,
                                       std::uint64_t episode, int epoch,
                                       int rank, int attempt) const noexcept;

  /// Hierarchy variant of image_corrupts (see level_write_fails).
  [[nodiscard]] bool level_image_corrupts(int level, double prob,
                                          std::uint64_t episode, int epoch,
                                          int rank) const noexcept;

  /// Is this physical copy of this send flipped in flight? `ordinal` is the
  /// sender's send counter (deterministic under the engine's fixed event
  /// order), `copy` the replica-copy index within the send's fan-out.
  [[nodiscard]] bool sdc_flips_copy(std::uint64_t episode, int sender_rank,
                                    std::uint64_t ordinal,
                                    int copy) const noexcept;

  /// First at-rest infection time of `rank` in `episode`, seconds from the
  /// episode start; +infinity when the at-rest rate is 0 (never fires).
  [[nodiscard]] double sdc_infection_time(std::uint64_t episode,
                                          int rank) const noexcept;

  /// Deterministic nonzero strain identifier for the injection at these
  /// coordinates — a pure function of (seed, class, episode, a, b), so two
  /// copies flipped by the same injection stay bitwise consistent.
  [[nodiscard]] std::uint64_t sdc_strain(FaultClass cls, std::uint64_t episode,
                                         std::uint64_t a,
                                         std::uint64_t b) const noexcept;

  [[nodiscard]] const CkptFaultParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const SdcParams& sdc() const noexcept { return sdc_; }
  [[nodiscard]] bool enabled() const noexcept { return params_.enabled(); }

 private:
  /// Uniform [0,1) draw from the stream (seed, cls, a, b, c).
  [[nodiscard]] double draw(FaultClass cls, std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) const noexcept;
  /// SDC variant: same stream construction, rooted at the SDC seed.
  [[nodiscard]] double sdc_draw(FaultClass cls, std::uint64_t a,
                                std::uint64_t b,
                                std::uint64_t c) const noexcept;

  CkptFaultParams params_;
  SdcParams sdc_;
};

}  // namespace redcr::failure
