// Failure injection (paper Section 5, first background process).
//
// Each physical node fails as a Poisson process with per-node MTBF θ. Per
// episode (a run from the last checkpoint until completion or job failure),
// the injector draws each node's first failure time from Exp(θ) — valid by
// memorylessness, since a restart relaunches every process on fresh spare
// nodes (assumption 5). The injector runs as a simulated background process:
// it sleeps until each failure instant, marks the physical process dead in
// the sphere monitor, and reports a *job* failure as soon as every replica
// of some virtual process (sphere) is dead — failures of single replicas do
// not interrupt the application (Fig. 7).
//
// Matching the paper's experimental condition, failures are (optionally)
// deferred while a checkpoint is in progress (`protected_phase` hook);
// restart phases happen between episodes, where the injector does not run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "obs/journal.hpp"
#include "obs/recorder.hpp"
#include "red/red_comm.hpp"
#include "red/replica_map.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace redcr::failure {

using red::Rank;

struct FailureParams {
  /// θ: per-node MTBF, seconds.
  util::Seconds node_mtbf = util::hours(6);
  /// Root seed; per-node, per-episode streams are derived from it.
  std::uint64_t seed = 42;
  /// If false (paper's experiments), failures landing inside a protected
  /// phase (checkpoint) are deferred to the end of that phase.
  bool inject_during_checkpoint = false;
  /// Weibull shape k of the failure-time distribution, with the scale set
  /// so the mean stays node_mtbf. k = 1 is the paper's exponential
  /// assumption; k < 1 models infant mortality, k > 1 wear-out (the
  /// "other failure distributions" of related work [3]).
  double weibull_shape = 1.0;

  /// Rejects NaN/non-positive MTBF and Weibull shape with a one-line
  /// std::invalid_argument naming the offending knob.
  void validate() const;
};

/// Tracks which physical processes are dead and whether any sphere (virtual
/// process) has lost all of its replicas. Implements red::Liveness so the
/// redundancy layer can degrade live traffic around dead replicas.
class SphereMonitor final : public red::Liveness {
 public:
  explicit SphereMonitor(const red::ReplicaMap& map);

  /// Marks a physical process dead; returns true if this killed its sphere.
  bool mark_dead(Rank physical);

  [[nodiscard]] bool is_dead(Rank physical) const override;
  [[nodiscard]] bool sphere_dead(Rank virtual_rank) const;
  [[nodiscard]] std::optional<Rank> first_dead_sphere() const noexcept {
    return dead_sphere_;
  }
  [[nodiscard]] std::size_t dead_processes() const noexcept {
    return dead_count_;
  }

 private:
  const red::ReplicaMap* map_;
  std::vector<bool> dead_;                 // by physical rank
  std::vector<unsigned> alive_in_sphere_;  // by virtual rank
  std::optional<Rank> dead_sphere_;
  std::size_t dead_count_ = 0;
};

/// Outcome reported by the injector when a sphere dies.
struct JobFailure {
  sim::Time time = 0.0;
  Rank sphere = -1;
  /// Journal event id of this failure's "sphere-death" event — the root
  /// fault everything downstream (restart attempts, fetch, rework, lost
  /// flushes, aborts) is attributed to. 0 when no journal is attached.
  std::uint64_t cause = 0;
};

class FailureInjector {
 public:
  FailureInjector(const red::ReplicaMap& map, FailureParams params);

  /// First failure time of every physical node for the given episode,
  /// indexed by physical rank. Deterministic in (seed, episode).
  [[nodiscard]] std::vector<sim::Time> draw_failure_times(
      std::uint64_t episode) const;

  /// Closed-form episode analysis (no engine needed): the earliest sphere
  /// death implied by `times`, if any sphere dies at all. Used by the
  /// fast-path harness and to cross-check the simulated injector.
  [[nodiscard]] static std::optional<JobFailure> first_sphere_death(
      const red::ReplicaMap& map, const std::vector<sim::Time>& times);

  /// The background injector process. Marks failures in `monitor` as they
  /// occur; on sphere death invokes `on_job_failure` (which typically stops
  /// the engine). `protected_phase` (may be empty) defers failures while it
  /// returns true, unless params.inject_during_checkpoint is set.
  /// `on_replica_death` (may be empty) fires for *every* death — live
  /// failure semantics hook it to abort pending receives from the corpse.
  [[nodiscard]] sim::Task run(sim::Engine& engine, SphereMonitor& monitor,
                              std::uint64_t episode,
                              std::function<bool()> protected_phase,
                              std::function<void(JobFailure)> on_job_failure,
                              std::function<void(Rank)> on_replica_death = {});

  [[nodiscard]] const FailureParams& params() const noexcept { return params_; }

  /// Attaches an observability recorder (nullptr detaches). Records a
  /// "replica-death" instant on the dying rank's track, a "sphere-death"
  /// instant on the job track, and the "failure.*" counters.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  /// Attaches a causal journal (nullptr detaches). Appends "replica-death"
  /// and "sphere-death" events; the sphere-death event id is threaded into
  /// JobFailure::cause so the executor can attribute downstream waste.
  void set_journal(obs::Journal* journal) { journal_ = journal; }

 private:
  const red::ReplicaMap* map_;
  FailureParams params_;
  obs::Recorder* recorder_ = nullptr;  // optional, not owned
  obs::Journal* journal_ = nullptr;    // optional, not owned
};

}  // namespace redcr::failure
