// redcr_cli — command-line front end to the library.
//
//   redcr_cli model    [machine/job flags] [--r R | --optimize]
//   redcr_cli sweep    [machine/job flags] [--step S]
//   redcr_cli run      [cluster flags] --workload W --redundancy R ...
//                      [--trace-out FILE] [--metrics-out FILE]
//
// `model` evaluates the paper's combined model at one degree (or finds the
// optimum); `sweep` prints the full degree sweep with crossovers; `run`
// (alias: `simulate`) runs an actual job on the discrete-event cluster and
// prints the report and per-episode timeline — optionally exporting a
// Chrome trace-event JSON (open in Perfetto / chrome://tracing) and an
// NDJSON metrics dump of the run.
//
// Run with --help (or no arguments) for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "apps/cg.hpp"
#include "apps/master_worker.hpp"
#include "apps/serve.hpp"
#include "apps/spectral.hpp"
#include "apps/stencil.hpp"
#include "apps/synthetic.hpp"
#include "redcr/redcr.hpp"
#include "util/table.hpp"

namespace {

using namespace redcr;
using util::fmt;
using util::fmt_count;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";  // boolean flag
      }
    }
  }

  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] std::string text(const std::string& key,
                                 const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

model::CombinedConfig model_config(const Flags& flags) {
  return redcr::scenario()
      .node_mtbf(util::years(flags.number("mtbf-years", 5)))
      .checkpoint_cost(flags.number("ckpt-sec", 600))
      .restart_cost(flags.number("restart-sec", 1800))
      .base_time(util::hours(flags.number("hours", 128)))
      .comm_fraction(flags.number("alpha", 0.2))
      .processes(static_cast<std::size_t>(flags.number("procs", 50000)))
      .build();
}

void print_prediction(const model::Prediction& p) {
  std::printf("degree r             : %.3fx\n", p.r);
  std::printf("physical processes   : %s\n",
              fmt_count(static_cast<long long>(p.total_procs)).c_str());
  std::printf("t_Red                : %.2f h\n",
              util::to_hours(p.redundant_time));
  std::printf("system MTBF          : %.2f h\n", util::to_hours(p.system_mtbf));
  std::printf("checkpoint interval  : %.1f min (Daly)\n",
              util::to_minutes(p.interval));
  std::printf("expected checkpoints : %.0f\n", p.expected_checkpoints);
  std::printf("expected failures    : %.2f\n", p.expected_failures);
  std::printf("TOTAL WALLCLOCK      : %.2f h\n", util::to_hours(p.total_time));
}

int cmd_model(const Flags& flags) {
  const model::CombinedConfig cfg = model_config(flags);
  if (flags.flag("optimize")) {
    const model::Optimum best = model::optimize_redundancy(cfg);
    std::printf("optimal configuration:\n");
    print_prediction(best.prediction);
    const model::IntervalOptimum interval =
        model::optimal_interval_search(cfg, best.r);
    std::printf("direct-optimal delta : %.1f min (Daly penalty %.2f%%)\n",
                util::to_minutes(interval.best_interval),
                100 * interval.daly_penalty);
    return 0;
  }
  print_prediction(model::predict(cfg, flags.number("r", 2.0)));
  return 0;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

// Model-side hierarchy knobs for `sweep`: --ml-levels "p:fetch[:stale];..."
// (fastest level first), --flush-cost / --flush-period, --async-flush with
// --exposed. Throws std::invalid_argument naming the bad knob.
model::UnreliableCkptParams unreliable_sweep_params(const Flags& flags) {
  model::UnreliableCkptParams u;
  const std::string spec = flags.text("ml-levels", "");
  if (!spec.empty()) {
    for (const std::string& part : split(spec, ';')) {
      const std::vector<std::string> fields = split(part, ':');
      if (fields.size() < 2 || fields.size() > 3)
        throw std::invalid_argument(
            "--ml-levels: expected 'prob:fetch_sec[:staleness_periods]' per "
            "';'-separated level, got '" +
            part + "'");
      model::UnreliableCkptParams::LevelRecovery level;
      level.recovery_prob = std::atof(fields[0].c_str());
      level.fetch_cost = std::atof(fields[1].c_str());
      if (fields.size() == 3)
        level.staleness_periods = std::atof(fields[2].c_str());
      u.levels.push_back(level);
    }
  }
  u.flush_cost = flags.number("flush-cost", 0.0);
  u.flush_period = flags.number("flush-period", 1.0);
  if (flags.flag("async-flush")) {
    u.async_flush = true;
    u.async_exposed_fraction = flags.number("exposed", 0.0);
  }
  u.validate();
  return u;
}

// The hierarchy-aware sweep (predict_unreliable per cell). Separate from the
// legacy path so the default sweep's schema and bytes never move.
int cmd_sweep_unreliable(const Flags& flags, const model::CombinedConfig& cfg,
                         exp::BenchArgs& args,
                         const std::vector<exp::Trial>& trials) {
  model::UnreliableCkptParams u;
  try {
    u = unreliable_sweep_params(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "redcr_cli sweep: %s\n", e.what());
    return 2;
  }
  std::vector<exp::Column> columns = {{"r"},
                                      {"T_total [h]", "total_h"},
                                      {"Theta_sys [h]", "theta_sys_h"},
                                      {"delta [min]", "delta_min"},
                                      {"E[failures]", "expected_failures"},
                                      {"P(recover)", "recovery_prob"},
                                      {"fail cost [min]", "per_failure_min"},
                                      {"flush [h]", "flush_h"},
                                      {"P(abort)", "abort_prob"}};
  if (args.keep_going) columns.push_back({"status"});
  exp::ResultSink t("sweep_unreliable", columns);
  t.set_title("Redundancy sweep (unreliable C/R + storage hierarchy)");
  const exp::SweepRunner runner(args.run_options());
  const auto outcomes =
      runner.map_outcomes(trials, [&](const exp::Trial& trial) {
        return model::predict_unreliable(cfg, trial.at("r"), u);
      });
  double best_r = 1.0, best_t = 1e300;
  std::size_t best_row = 0;
  bool any_ok = false;
  std::size_t failed_cells = 0;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (!outcomes[i].ok()) {
      if (!args.keep_going) {
        std::fprintf(stderr, "redcr_cli sweep: r=%.2f: %s\n",
                     trials[i].at("r"), outcomes[i].error.c_str());
        return 1;
      }
      ++failed_cells;
      t.add_row({{trials[i].at("r"), 2}, "-", "-", "-", "-", "-", "-", "-",
                 "-", "failed: " + outcomes[i].error});
      continue;
    }
    const model::UnreliablePrediction& p = outcomes[i].value;
    std::vector<exp::Cell> row = {{trials[i].at("r"), 2},
                                  {util::to_hours(p.total_time), 1},
                                  {util::to_hours(p.base.system_mtbf), 1},
                                  {util::to_minutes(p.base.interval), 1},
                                  {p.base.expected_failures, 1},
                                  {p.recovery_probability, 4},
                                  {util::to_minutes(p.per_failure_overhead), 1},
                                  {util::to_hours(p.flush_overhead_total), 2},
                                  {p.abort_probability, 4}};
    if (args.keep_going) row.emplace_back("ok");
    t.add_row(std::move(row));
    if (!any_ok || p.total_time < best_t) {
      best_t = p.total_time;
      best_r = trials[i].at("r");
      best_row = i;
      any_ok = true;
    }
  }
  if (any_ok) t.emphasize_row(best_row, 1);
  t.emit(args);
  if (failed_cells > 0)
    args.say("%zu of %zu cells failed (kept going)\n", failed_cells,
             trials.size());
  if (any_ok) args.say("best degree: %.2fx\n", best_r);
  return 0;
}

int cmd_sweep(const Flags& flags) {
  const model::CombinedConfig cfg = model_config(flags);
  const double step = flags.number("step", 0.25);

  // The sweep is the one campaign-shaped command: route it through the
  // experiment harness so it gets --jobs/--json/--filter/--csv for free.
  exp::BenchArgs args;
  args.jobs = static_cast<int>(flags.number("jobs", 0));
  args.json = flags.flag("json");
  args.filter = flags.text("filter", "");
  args.csv_dir = flags.text("csv", "");
  args.keep_going = flags.flag("keep-going");

  exp::ParamGrid grid;
  grid.axis("r", exp::ParamGrid::range(1.0, 3.0, step));
  std::vector<exp::Trial> trials;
  try {
    trials = grid.trials(args.filter);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "redcr_cli sweep: %s\n", e.what());
    return 2;
  }

  // The hierarchy/flush knobs switch the sweep to the unreliable-C/R model;
  // without them the legacy sweep below stays byte-identical.
  if (flags.flag("ml-levels") || flags.flag("flush-cost") ||
      flags.flag("async-flush"))
    return cmd_sweep_unreliable(flags, cfg, args, trials);

  std::vector<exp::Column> columns = {{"r"},
                                      {"T_total [h]", "total_h"},
                                      {"nodes"},
                                      {"Theta_sys [h]", "theta_sys_h"},
                                      {"delta [min]", "delta_min"},
                                      {"E[failures]", "expected_failures"}};
  // Under --keep-going the schema grows a status column; the default schema
  // stays byte-identical to the historical output.
  if (args.keep_going) columns.push_back({"status"});
  exp::ResultSink t("sweep", columns);
  t.set_title("Redundancy sweep");
  double best_r = 1.0, best_t = 1e300;
  std::size_t best_row = 0;
  bool any_ok = false;
  std::size_t failed_cells = 0;

  if (args.keep_going) {
    // Per-cell evaluation so one bad point (e.g. a degree the model rejects)
    // becomes a failed row instead of killing the sweep. predict() is
    // bitwise-identical per cell to the memoized batch path below.
    const exp::SweepRunner runner(args.run_options());
    const auto outcomes =
        runner.map_outcomes(trials, [&](const exp::Trial& trial) {
          return model::predict(cfg, trial.at("r"));
        });
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (!outcomes[i].ok()) {
        ++failed_cells;
        t.add_row({{trials[i].at("r"), 2}, "-", "-", "-", "-", "-",
                   "failed: " + outcomes[i].error});
        continue;
      }
      const model::Prediction& p = outcomes[i].value;
      t.add_row({{trials[i].at("r"), 2},
                 {util::to_hours(p.total_time), 1},
                 exp::Cell::count(static_cast<long long>(p.total_procs)),
                 {util::to_hours(p.system_mtbf), 1},
                 {util::to_minutes(p.interval), 1},
                 {p.expected_failures, 1},
                 "ok"});
      if (!any_ok || p.total_time < best_t) {
        best_t = p.total_time;
        best_r = trials[i].at("r");
        best_row = i;
        any_ok = true;
      }
    }
  } else {
    // The whole sweep shares one config, so it is exactly the sweep-shaped
    // query redcr::Planner answers: the Eq. 9 sphere terms are memoized
    // across degrees and the points run on the worker pool. The default
    // EvalMode::kExact keeps every cell bitwise-identical to predict(), so
    // routing through the facade moved no bytes.
    Planner planner(/*plan_cache_capacity=*/1);
    PlanRequest request;
    request.config = cfg;
    request.degrees.reserve(trials.size());
    for (const exp::Trial& trial : trials)
      request.degrees.push_back(trial.at("r"));
    const PlanResponse plan = planner.plan(request, args.run_options().jobs);
    const std::vector<model::Prediction>& preds = plan.sweep();
    for (std::size_t i = 0; i < trials.size(); ++i) {
      const model::Prediction& p = preds[i];
      t.add_row({{trials[i].at("r"), 2},
                 {util::to_hours(p.total_time), 1},
                 exp::Cell::count(static_cast<long long>(p.total_procs)),
                 {util::to_hours(p.system_mtbf), 1},
                 {util::to_minutes(p.interval), 1},
                 {p.expected_failures, 1}});
      if (p.total_time < best_t) {
        best_t = p.total_time;
        best_r = trials[i].at("r");
        best_row = i;
      }
    }
    any_ok = !trials.empty();
  }
  if (any_ok) t.emphasize_row(best_row, 1);
  t.emit(args);
  if (failed_cells > 0)
    args.say("%zu of %zu cells failed (kept going)\n", failed_cells,
             trials.size());
  if (!args.keep_going || any_ok)
    args.say("best degree: %.2fx\n\n", best_r);

  model::CombinedConfig probe = cfg;
  const auto x12 = model::crossover_procs(probe, 1.0, 2.0, 100, 5000000);
  if (x12)
    args.say("2x beats 1x from N = %s processes (at these machine "
             "parameters)\n",
             fmt_count(static_cast<long long>(*x12)).c_str());
  return 0;
}

runtime::WorkloadFactory make_workload(const std::string& name,
                                       const Flags& flags) {
  if (name == "cg") {
    apps::CgSpec spec;
    spec.rows_per_rank =
        static_cast<std::size_t>(flags.number("rows", 64));
    spec.max_iterations = static_cast<long>(flags.number("iterations", 150));
    spec.compute_per_iteration = flags.number("compute-sec", 5.0);
    return [spec](int rank, int n) {
      return std::make_unique<apps::CgSolver>(spec, rank, n);
    };
  }
  if (name == "stencil") {
    apps::StencilSpec spec;
    spec.iterations = static_cast<long>(flags.number("iterations", 64));
    spec.compute_per_iteration = flags.number("compute-sec", 5.0);
    const int side = static_cast<int>(flags.number("grid-side", 2));
    spec.grid = {side, side, side};
    return [spec](int, int) { return std::make_unique<apps::Stencil3d>(spec); };
  }
  if (name == "spectral") {
    apps::SpectralSpec spec;
    spec.iterations = static_cast<long>(flags.number("iterations", 32));
    spec.compute_per_iteration = flags.number("compute-sec", 5.0);
    return [spec](int, int) {
      return std::make_unique<apps::SpectralWorkload>(spec);
    };
  }
  if (name == "masterworker") {
    apps::MasterWorkerSpec spec;
    spec.rounds = static_cast<long>(flags.number("iterations", 32));
    spec.base_task_cost = flags.number("compute-sec", 1.0);
    return [spec](int rank, int n) {
      return std::make_unique<apps::MasterWorker>(spec, rank, n);
    };
  }
  // default: the CG-shaped synthetic workload
  apps::SyntheticSpec spec;
  spec.iterations = static_cast<long>(flags.number("iterations", 92));
  spec.compute_per_iteration = flags.number("compute-sec", 24.0);
  spec.halo_bytes = flags.number("halo-bytes", 300e6);
  return [spec](int, int) {
    return std::make_unique<apps::SyntheticWorkload>(spec);
  };
}

int cmd_simulate(const Flags& flags) {
  runtime::JobConfig cfg;
  cfg.num_virtual = static_cast<std::size_t>(flags.number("virtual", 32));
  cfg.redundancy = flags.number("redundancy", 2.0);
  cfg.network.bandwidth = flags.number("bandwidth", 100e6);
  cfg.storage.bandwidth = flags.number("storage-bandwidth", 2e9);
  cfg.image_bytes = flags.number("image-bytes", 1e9);
  cfg.restart_cost = flags.number("restart-sec", 500);
  cfg.fail.node_mtbf = util::hours(flags.number("mtbf-hours", 6));
  cfg.fail.seed = static_cast<std::uint64_t>(flags.number("seed", 1));
  cfg.fail.weibull_shape = flags.number("weibull-shape", 1.0);
  cfg.replication = flags.text("protocol", "push") == "pull"
                        ? runtime::Replication::kPull
                        : runtime::Replication::kPush;
  if (flags.flag("msg-plus-hash")) cfg.red.mode = red::Mode::kMsgPlusHash;
  if (flags.flag("live")) {
    cfg.live_failure_semantics = true;
    cfg.checkpoint_enabled = false;
  }
  if (flags.flag("no-checkpoint")) cfg.checkpoint_enabled = false;
  if (cfg.checkpoint_enabled)
    cfg.checkpoint_interval = flags.number("interval-sec", 300);
  if (flags.flag("no-failures")) cfg.inject_failures = false;
  cfg.ckpt_forked = flags.flag("forked-checkpoint");
  cfg.ckpt_incremental_fraction = flags.number("incremental-fraction", 1.0);

  // Unreliable-C/R knobs. Defaults keep every probability at zero and the
  // retention depth at one, which is byte-identical to the pre-fault
  // pipeline (no extra events, no extra metrics, same stdout).
  cfg.ckpt_faults.write_failure_prob =
      flags.number("ckpt-write-failure-prob", 0.0);
  cfg.ckpt_faults.corruption_prob = flags.number("ckpt-corruption-prob", 0.0);
  cfg.ckpt_faults.restart_failure_prob =
      flags.number("restart-failure-prob", 0.0);
  cfg.ckpt_faults.seed = static_cast<std::uint64_t>(
      flags.number("faults-seed", static_cast<double>(cfg.ckpt_faults.seed)));
  // Silent-data-corruption injection. Defaults keep both rates at zero,
  // which leaves every payload strain-free and the stdout byte-identical
  // to an SDC-free build.
  cfg.sdc.inflight_prob = flags.number("sdc-inflight-prob", 0.0);
  cfg.sdc.atrest_rate = flags.number("sdc-atrest-rate", 0.0);
  cfg.sdc.seed = static_cast<std::uint64_t>(
      flags.number("sdc-seed", static_cast<double>(cfg.sdc.seed)));
  cfg.ckpt_retention = static_cast<int>(flags.number("ckpt-retention", 1));
  cfg.ckpt_write_retry.max_attempts = static_cast<int>(
      flags.number("write-retries", cfg.ckpt_write_retry.max_attempts));
  cfg.restart_retry.max_attempts = static_cast<int>(
      flags.number("restart-retries", cfg.restart_retry.max_attempts));
  // Presence-gated so an explicit bad value (negative, NaN) reaches
  // RetryPolicy::validate instead of being mistaken for "not given".
  if (flags.flag("retry-backoff")) {
    const double backoff = flags.number("retry-backoff", 0.0);
    cfg.ckpt_write_retry.backoff_base = backoff;
    cfg.restart_retry.backoff_base = backoff;
  }
  if (flags.flag("retry-backoff-cap")) {
    const double backoff_cap = flags.number("retry-backoff-cap", 0.0);
    cfg.ckpt_write_retry.backoff_cap = backoff_cap;
    cfg.restart_retry.backoff_cap = backoff_cap;
  }

  // Multi-level storage hierarchy. Absent --ckpt-levels leaves the flat
  // single-device pipeline (and its stdout) byte-identical.
  const std::string levels_spec = flags.text("ckpt-levels", "");
  if (flags.flag("ckpt-levels")) {
    try {
      cfg.hierarchy = ckpt::parse_hierarchy(levels_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "redcr_cli: --ckpt-levels: %s\n", e.what());
      return 2;
    }
    cfg.hierarchy.async_flush = flags.flag("async-flush");
  } else if (flags.flag("async-flush")) {
    std::fprintf(stderr,
                 "redcr_cli: --async-flush requires --ckpt-levels with a "
                 "pfs level\n");
    return 2;
  }

  // run_job attaches the observability recorder when a sink is requested
  // and writes the exports after the run; main() already applied the log
  // level, so the option block carries only the sinks here.
  redcr::RunOptions options;
  options.trace_out = flags.text("trace-out", "");
  options.metrics_out = flags.text("metrics-out", "");
  options.journal_out = flags.text("journal-out", "");
  // Engine default: auto — fast-forward wherever bit-identity is provable,
  // event otherwise (a --trace-out/--journal-out sink always falls back:
  // the arithmetic skip produces no per-event output to record).
  const std::string engine_name = flags.text("engine", "auto");
  const std::optional<redcr::EngineMode> engine_mode =
      redcr::parse_engine_mode(engine_name);
  if (!engine_mode) {
    std::fprintf(stderr,
                 "redcr_cli: invalid --engine '%s' (expected "
                 "event|fastforward|auto)\n",
                 engine_name.c_str());
    return 2;
  }
  options.engine = *engine_mode;
  runtime::JobReport report;
  try {
    report = redcr::run_job(
        cfg, make_workload(flags.text("workload", "synthetic"), flags),
        options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "redcr_cli: %s\n", e.what());
    return 1;
  }

  // `--journal-out -` hands stdout to the journal stream so it can pipe
  // straight into `redcr_cli analyze --journal -`; the human summary moves
  // to stderr to keep the pipe parseable. The older `--trace-out -` /
  // `--metrics-out -` keep their historical stdout mixing (pinned bytes).
  std::FILE* text = options.journal_out == "-" ? stderr : stdout;
  const bool unreliable = cfg.ckpt_faults.enabled() ||
                          cfg.ckpt_retention > 1 || cfg.hierarchy.enabled();
  const char* outcome = report.completed ? "completed"
                        : report.abort   ? "ABORTED"
                                         : "GAVE UP (max episodes)";
  std::fprintf(text, "outcome          : %s\n", outcome);
  std::fprintf(text, "wallclock        : %.1f min\n", util::to_minutes(report.wallclock));
  std::fprintf(text, "  useful work    : %.1f min\n", util::to_minutes(report.useful_work));
  std::fprintf(text, "  checkpoints    : %.1f min (%d taken)\n",
              util::to_minutes(report.checkpoint_time), report.checkpoints);
  std::fprintf(text, "  rework         : %.1f min\n", util::to_minutes(report.rework_time));
  std::fprintf(text, "  restarts       : %.1f min (%d job failures)\n",
              util::to_minutes(report.restart_time), report.job_failures);
  // Fault-pipeline accounting only appears when the pipeline can actually
  // fail; zero-fault retention-1 stdout stays byte-identical to pre-fault
  // builds.
  if (unreliable) {
    std::fprintf(text, "  ckpt writes    : %llu failed, %d epochs abandoned, "
                "%.1f min wasted\n",
                static_cast<unsigned long long>(report.ckpt_write_failures),
                report.failed_checkpoints,
                util::to_minutes(report.wasted_write_time));
    std::fprintf(text, "  restart tries  : %d (%d failed, %d fallback restores)\n",
                report.restart_attempts, report.failed_restarts,
                report.fallback_restores);
    if (report.abort)
      std::fprintf(text, "abort            : %s\n", report.abort->describe().c_str());
  }
  // SDC accounting; only emitted when an --sdc-* rate is nonzero, so
  // SDC-free stdout stays byte-identical.
  if (cfg.sdc.enabled()) {
    std::fprintf(text,
                 "  sdc            : %llu injected (%llu corrected, %llu "
                 "passed undetected)\n",
                 static_cast<unsigned long long>(report.sdc_injected),
                 static_cast<unsigned long long>(report.sdc_corrected),
                 static_cast<unsigned long long>(report.sdc_undetected));
    std::fprintf(text,
                 "  sdc rollbacks  : %d (%d unverified ckpts invalidated, "
                 "%.1f min rework)\n",
                 report.sdc_rollbacks, report.sdc_invalidated_ckpts,
                 util::to_minutes(report.sdc_rework));
    if (report.sdc_rollbacks > 0)
      std::fprintf(text, "  sdc latency    : %.1f s mean detection\n",
                   report.sdc_detection_latency / report.sdc_rollbacks);
    if (report.sdc_infected_final > 0)
      std::fprintf(text,
                   "  WARNING        : job finished with %llu rank(s) "
                   "silently corrupted\n",
                   static_cast<unsigned long long>(report.sdc_infected_final));
  }
  // Hierarchy accounting; only emitted when --ckpt-levels was given, so
  // flat-pipeline stdout stays byte-identical.
  if (cfg.hierarchy.enabled()) {
    std::fprintf(text, "  flush          : %.1f min drain (%d landed, %d lost)\n",
                util::to_minutes(report.flush_time), report.flushes_completed,
                report.flushes_lost);
    std::fprintf(text, "  fetch          : %.1f min\n",
                util::to_minutes(report.fetch_time));
    for (std::size_t l = 0; l < report.levels.size(); ++l) {
      const auto& lv = report.levels[l];
      std::fprintf(text, "  level %zu %-7s: %llu writes (%llu failed), "
                  "%llu commits, %llu serves, %llu defeated\n",
                  l, lv.kind.c_str(),
                  static_cast<unsigned long long>(lv.writes),
                  static_cast<unsigned long long>(lv.write_failures),
                  static_cast<unsigned long long>(lv.commits),
                  static_cast<unsigned long long>(lv.fetches),
                  static_cast<unsigned long long>(lv.defeated));
    }
  }
  std::fprintf(text, "replica deaths   : %d\n", report.physical_failures);
  std::fprintf(text, "physical procs   : %zu\n", report.num_physical);
  std::fprintf(text, "messages         : %s\n",
              fmt_count(static_cast<long long>(report.messages)).c_str());
  if (report.red_mismatches_detected > 0)
    std::fprintf(text, "SDC detected     : %llu (corrected %llu)\n",
                static_cast<unsigned long long>(report.red_mismatches_detected),
                static_cast<unsigned long long>(report.red_mismatches_corrected));
  std::fprintf(text, "\ntimeline:\n%s", runtime::render_trace(report.trace).c_str());
  return report.completed ? 0 : 1;
}

// Reads a whole file ("-" = stdin) into a string; throws std::runtime_error
// naming the path on failure.
std::string read_text(const std::string& path) {
  std::FILE* in = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (in == nullptr)
    throw std::runtime_error("cannot open '" + path + "' for reading");
  std::string text;
  char buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, in)) > 0)
    text.append(buffer, n);
  if (in != stdin) std::fclose(in);
  return text;
}

int cmd_analyze(const Flags& flags) {
  const std::string path = flags.text("journal", "");
  if (path.empty()) {
    std::fprintf(
        stderr,
        "redcr_cli analyze: --journal FILE is required ('-' = stdin)\n");
    return 2;
  }
  std::vector<obs::Journal::Event> events;
  try {
    events = obs::parse_journal(read_text(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "redcr_cli analyze: %s: %s\n", path.c_str(),
                 e.what());
    return 2;
  }

  // Run-diff triage: exit 0 when the journals are event-identical, 1 with
  // the first divergent event (plus causal context) otherwise.
  if (flags.flag("diff")) {
    const std::string diff_path = flags.text("diff", "");
    std::vector<obs::Journal::Event> other;
    try {
      other = obs::parse_journal(read_text(diff_path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "redcr_cli analyze: %s: %s\n", diff_path.c_str(),
                   e.what());
      return 2;
    }
    const obs::DiffResult result = obs::diff(events, other);
    std::fputs(result.render(events, other).c_str(), stdout);
    return result.identical ? 0 : 1;
  }

  const bool want_levels = flags.flag("levels");
  const bool want_blame = flags.flag("blame") || !want_levels;  // the default
  if (want_blame) {
    const obs::BlameReport report = obs::blame(events);
    obs::BlameOptions options;
    options.top_k = static_cast<int>(flags.number("top", 10));
    // Predicted-waste columns at the journal's observed δ, c, R — skipped
    // when the journal carries no interval (checkpointing off) or the user
    // asked for attribution only.
    if (!flags.flag("no-model") && report.summary.interval > 0.0) {
      const model::FailureWaste waste = model::predicted_failure_waste(
          report.summary.interval, report.summary.mean_ckpt_cost,
          report.summary.restart_cost);
      options.predicted_rework = waste.rework;
      options.predicted_restart = waste.restart;
    }
    std::fputs(report.render(options).c_str(), stdout);
    if (!report.reconciled()) {
      std::fprintf(stderr,
                   "redcr_cli analyze: blame does NOT reconcile with the "
                   "executor invariant (residual %.9g s)\n",
                   report.residual);
      return 1;
    }
  }
  if (want_levels) {
    if (want_blame) std::fputs("\n", stdout);
    std::fputs(obs::level_efficacy(events).render().c_str(), stdout);
  }
  return 0;
}

// Capacity-planner-as-a-service: replay an NDJSON query log through
// redcr::Planner (apps::serve_replay). Responses go to stdout (pipe-pure,
// deterministic bytes — golden-diffable); the qps/latency report and the
// planner.* metrics NDJSON go to stderr.
int cmd_serve(const Flags& flags) {
  const std::string path = flags.text("replay", "");
  if (path.empty()) {
    std::fprintf(stderr,
                 "redcr_cli serve: --replay FILE is required ('-' = stdin)\n");
    return 2;
  }
  apps::ServeOptions options;
  // "--jobs auto" (and absence) mean hardware concurrency, matching
  // exp::BenchArgs; atof's 0 on "auto" is exactly the 0 = auto encoding.
  options.jobs = static_cast<int>(flags.number("jobs", 0));
  options.cache_capacity =
      static_cast<std::size_t>(flags.number("cache", 256));
  const std::string mode = flags.text("mode", "fast");
  if (mode == "exact") {
    options.mode = model::EvalMode::kExact;
  } else if (mode != "fast") {
    std::fprintf(stderr,
                 "redcr_cli serve: invalid --mode '%s' (expected fast|exact)\n",
                 mode.c_str());
    return 2;
  }
  std::string requests;
  std::string responses;
  apps::ServeReport report;
  try {
    requests = read_text(path);
    report = apps::serve_replay(requests, responses, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "redcr_cli serve: %s: %s\n", path.c_str(), e.what());
    return 2;
  }
  std::fwrite(responses.data(), 1, responses.size(), stdout);
  std::fputs(report.render().c_str(), stderr);
  obs::Registry registry;
  report.export_metrics(registry);
  registry.write_ndjson(stderr);
  return 0;
}

void usage() {
  std::printf(
      "redcr_cli — combined partial redundancy + checkpointing toolkit\n\n"
      "  redcr_cli model    --procs N --hours T --mtbf-years Y --alpha A\n"
      "                     --ckpt-sec C --restart-sec R (--r R | --optimize)\n"
      "  redcr_cli sweep    [same machine flags] [--step 0.25] [--jobs N|auto]\n"
      "                     [--json] [--filter 'r=2'] [--csv DIR]\n"
      "                     [--keep-going]\n"
      "                     [--ml-levels 'p:fetch[:stale];...'] [--flush-cost C]\n"
      "                     [--flush-period M] [--async-flush] [--exposed F]\n"
      "  redcr_cli run      --virtual N --redundancy R --mtbf-hours H\n"
      "                     [--workload synthetic|cg|stencil|spectral|masterworker]\n"
      "                     [--protocol push|pull] [--msg-plus-hash] [--live]\n"
      "                     [--no-checkpoint] [--no-failures] [--seed S]\n"
      "                     [--forked-checkpoint] [--incremental-fraction F]\n"
      "                     [--weibull-shape K] [--interval-sec D]\n"
      "                     [--ckpt-write-failure-prob P] [--ckpt-corruption-prob P]\n"
      "                     [--restart-failure-prob P] [--faults-seed S]\n"
      "                     [--ckpt-retention D] [--write-retries N]\n"
      "                     [--restart-retries N] [--retry-backoff B]\n"
      "                     [--retry-backoff-cap C]\n"
      "                     [--sdc-inflight-prob P] [--sdc-atrest-rate R]\n"
      "                     [--sdc-seed S]\n"
      "                     [--ckpt-levels SPEC] [--async-flush]\n"
      "                     [--engine event|fastforward|auto]\n"
      "                     [--trace-out FILE] [--metrics-out FILE]\n"
      "                     [--journal-out FILE]\n"
      "                     (alias: simulate)\n"
      "  redcr_cli analyze  --journal FILE [--blame] [--levels] [--top K]\n"
      "                     [--no-model] [--diff FILE2]\n"
      "  redcr_cli serve    --replay FILE [--jobs N|auto] [--cache N]\n"
      "                     [--mode fast|exact]\n\n"
      "Serving: `serve --replay FILE` replays an NDJSON query log (one\n"
      "scenario per line, keys id/procs/hours/alpha/mtbf_years/ckpt_sec/\n"
      "restart_sec/r_min/r_max/r_step, all optional with `model`-flag\n"
      "defaults) through the plan-cached redcr::Planner and prints one\n"
      "NDJSON response per request on stdout — best_r, total_hours, nodes,\n"
      "interval_min, system_mtbf_hours, expected_failures, from_cache —\n"
      "deterministic bytes at any --jobs level. The qps/latency report and\n"
      "planner.* metrics land on stderr. --mode exact answers bitwise-\n"
      "identically to scalar predict(); fast (default) uses the vectorized\n"
      "kernels. '-' reads stdin.\n\n"
      "Journal analysis: `run --journal-out FILE` records every causally\n"
      "meaningful event (failures, per-level checkpoint commits, flush\n"
      "launches/losses, restarts, restores, rework, aborts) as NDJSON, each\n"
      "waste event carrying the id of its root sphere-death as `cause`.\n"
      "`analyze --blame` (the default) ranks root faults by attributed\n"
      "waste, reconciled exactly against the executor's accounting\n"
      "invariant, with model-predicted per-failure columns (--no-model\n"
      "omits them); `--levels` prints per-storage-level efficacy (work\n"
      "saved by restores served there minus write/flush/lost cost);\n"
      "`--diff FILE2` pinpoints the first divergent event between two runs\n"
      "(exit 0 = identical, 1 = divergent). '-' reads stdin.\n\n"
      "Storage hierarchy (run): --ckpt-levels takes ';'-separated levels,\n"
      "fastest first, each 'kind[,key=value...]' with kind one of\n"
      "local|partner|xor|pfs and keys bw (write B/s), lat (latency s),\n"
      "rbw (read B/s; 0 = free fetch), ret (generations kept), interval\n"
      "(write every m-th epoch; level 0 must use 1), corr (per-image\n"
      "corruption prob), wfail (write-failure prob), group (partner/xor\n"
      "group size; 0 = all ranks), k (xor rank losses tolerated). At most\n"
      "one pfs level, last. Restores fetch from the fastest level that\n"
      "survived the failure's dead set; --async-flush overlaps the pfs\n"
      "drain with useful work (an in-flight flush at a kill is lost).\n"
      "Example: --ckpt-levels 'local,bw=5e9;xor,group=4,k=1,bw=2e9;\n"
      "pfs,bw=4e8,interval=4' --async-flush\n\n"
      "Sweep hierarchy terms: --ml-levels gives per-level recovery\n"
      "probability, fetch seconds and staleness (checkpoint periods),\n"
      "fastest first; --flush-cost/--flush-period add a PFS drain every\n"
      "M-th checkpoint; --async-flush keeps only --exposed F of each drain\n"
      "on the critical path. Any of these switches the sweep to the\n"
      "unreliable-C/R prediction with recovery/abort columns.\n\n"
      "Unreliable C/R: checkpoint writes fail with probability P and are\n"
      "retried with capped exponential backoff; images silently corrupt with\n"
      "probability P and are detected at restart-time validation, falling\n"
      "back through --ckpt-retention generations; restart attempts fail with\n"
      "probability P. Exhausted retries or no valid generation aborts the\n"
      "job (exit 1) with a structured reason. All draws derive from\n"
      "--faults-seed, so reruns are bit-identical at any --jobs level.\n\n"
      "Silent data corruption (run, push protocol): --sdc-inflight-prob\n"
      "flips each redundant send copy with probability P; --sdc-atrest-rate\n"
      "corrupts each rank's resident state at exponential rate R per second.\n"
      "Replication itself is the detector: dual spheres detect the\n"
      "divergence (uncorrectable -> rollback to the last VERIFIED\n"
      "checkpoint, unverified generations invalidated), triple spheres\n"
      "outvote and correct it, unreplicated spheres pass it silently (the\n"
      "job finishes with a corruption warning). All draws derive from\n"
      "--sdc-seed, bit-identical at any --jobs level.\n\n"
      "Execution engine (run): --engine auto (default) skips the\n"
      "inter-failure event churn arithmetically wherever the fast-forward\n"
      "driver can prove the result bit-identical, and silently runs the\n"
      "event engine elsewhere; fastforward warns when it must fall back;\n"
      "event pins the full discrete-event simulation. Reports are\n"
      "bit-identical across engines for every supported configuration.\n\n"
      "Global: [--log-level debug|info|warn|error|off]  (or REDCR_LOG_LEVEL\n"
      "env var; the flag wins). --trace-out writes Chrome trace-event JSON\n"
      "(open in Perfetto or chrome://tracing); --metrics-out writes one\n"
      "JSON object per metric, newline-delimited; --journal-out writes the\n"
      "causal event journal, one event per line. Use '-' for stdout.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  // Env first, explicit flag last, so --log-level wins.
  util::init_log_level_from_env();
  const std::string log_level = flags.text("log-level", "");
  if (!log_level.empty()) {
    const auto level = util::parse_log_level(log_level);
    if (!level) {
      std::fprintf(stderr,
                   "redcr_cli: invalid --log-level '%s' "
                   "(expected debug|info|warn|error|off)\n",
                   log_level.c_str());
      return 2;
    }
    util::set_log_level(*level);
  }
  if (command == "model") return cmd_model(flags);
  if (command == "sweep") return cmd_sweep(flags);
  if (command == "run" || command == "simulate") return cmd_simulate(flags);
  if (command == "analyze") return cmd_analyze(flags);
  if (command == "serve") return cmd_serve(flags);
  usage();
  return command == "--help" || command == "help" ? 0 : 2;
}
