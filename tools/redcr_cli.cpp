// redcr_cli — command-line front end to the library.
//
//   redcr_cli model    [machine/job flags] [--r R | --optimize]
//   redcr_cli sweep    [machine/job flags] [--step S]
//   redcr_cli run      [cluster flags] --workload W --redundancy R ...
//                      [--trace-out FILE] [--metrics-out FILE]
//
// `model` evaluates the paper's combined model at one degree (or finds the
// optimum); `sweep` prints the full degree sweep with crossovers; `run`
// (alias: `simulate`) runs an actual job on the discrete-event cluster and
// prints the report and per-episode timeline — optionally exporting a
// Chrome trace-event JSON (open in Perfetto / chrome://tracing) and an
// NDJSON metrics dump of the run.
//
// Run with --help (or no arguments) for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "apps/cg.hpp"
#include "apps/master_worker.hpp"
#include "apps/spectral.hpp"
#include "apps/stencil.hpp"
#include "apps/synthetic.hpp"
#include "redcr/redcr.hpp"
#include "util/table.hpp"

namespace {

using namespace redcr;
using util::fmt;
using util::fmt_count;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";  // boolean flag
      }
    }
  }

  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] std::string text(const std::string& key,
                                 const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

model::CombinedConfig model_config(const Flags& flags) {
  return redcr::scenario()
      .node_mtbf(util::years(flags.number("mtbf-years", 5)))
      .checkpoint_cost(flags.number("ckpt-sec", 600))
      .restart_cost(flags.number("restart-sec", 1800))
      .base_time(util::hours(flags.number("hours", 128)))
      .comm_fraction(flags.number("alpha", 0.2))
      .processes(static_cast<std::size_t>(flags.number("procs", 50000)))
      .build();
}

void print_prediction(const model::Prediction& p) {
  std::printf("degree r             : %.3fx\n", p.r);
  std::printf("physical processes   : %s\n",
              fmt_count(static_cast<long long>(p.total_procs)).c_str());
  std::printf("t_Red                : %.2f h\n",
              util::to_hours(p.redundant_time));
  std::printf("system MTBF          : %.2f h\n", util::to_hours(p.system_mtbf));
  std::printf("checkpoint interval  : %.1f min (Daly)\n",
              util::to_minutes(p.interval));
  std::printf("expected checkpoints : %.0f\n", p.expected_checkpoints);
  std::printf("expected failures    : %.2f\n", p.expected_failures);
  std::printf("TOTAL WALLCLOCK      : %.2f h\n", util::to_hours(p.total_time));
}

int cmd_model(const Flags& flags) {
  const model::CombinedConfig cfg = model_config(flags);
  if (flags.flag("optimize")) {
    const model::Optimum best = model::optimize_redundancy(cfg);
    std::printf("optimal configuration:\n");
    print_prediction(best.prediction);
    const model::IntervalOptimum interval =
        model::optimal_interval_search(cfg, best.r);
    std::printf("direct-optimal delta : %.1f min (Daly penalty %.2f%%)\n",
                util::to_minutes(interval.best_interval),
                100 * interval.daly_penalty);
    return 0;
  }
  print_prediction(model::predict(cfg, flags.number("r", 2.0)));
  return 0;
}

int cmd_sweep(const Flags& flags) {
  const model::CombinedConfig cfg = model_config(flags);
  const double step = flags.number("step", 0.25);

  // The sweep is the one campaign-shaped command: route it through the
  // experiment harness so it gets --jobs/--json/--filter/--csv for free.
  exp::BenchArgs args;
  args.jobs = static_cast<int>(flags.number("jobs", 0));
  args.json = flags.flag("json");
  args.filter = flags.text("filter", "");
  args.csv_dir = flags.text("csv", "");
  args.keep_going = flags.flag("keep-going");

  exp::ParamGrid grid;
  grid.axis("r", exp::ParamGrid::range(1.0, 3.0, step));
  std::vector<exp::Trial> trials;
  try {
    trials = grid.trials(args.filter);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "redcr_cli sweep: %s\n", e.what());
    return 2;
  }

  std::vector<exp::Column> columns = {{"r"},
                                      {"T_total [h]", "total_h"},
                                      {"nodes"},
                                      {"Theta_sys [h]", "theta_sys_h"},
                                      {"delta [min]", "delta_min"},
                                      {"E[failures]", "expected_failures"}};
  // Under --keep-going the schema grows a status column; the default schema
  // stays byte-identical to the historical output.
  if (args.keep_going) columns.push_back({"status"});
  exp::ResultSink t("sweep", columns);
  t.set_title("Redundancy sweep");
  double best_r = 1.0, best_t = 1e300;
  std::size_t best_row = 0;
  bool any_ok = false;
  std::size_t failed_cells = 0;

  if (args.keep_going) {
    // Per-cell evaluation so one bad point (e.g. a degree the model rejects)
    // becomes a failed row instead of killing the sweep. predict() is
    // bitwise-identical per cell to the memoized batch path below.
    const exp::SweepRunner runner(args.run_options());
    const auto outcomes =
        runner.map_outcomes(trials, [&](const exp::Trial& trial) {
          return model::predict(cfg, trial.at("r"));
        });
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (!outcomes[i].ok()) {
        ++failed_cells;
        t.add_row({{trials[i].at("r"), 2}, "-", "-", "-", "-", "-",
                   "failed: " + outcomes[i].error});
        continue;
      }
      const model::Prediction& p = outcomes[i].value;
      t.add_row({{trials[i].at("r"), 2},
                 {util::to_hours(p.total_time), 1},
                 exp::Cell::count(static_cast<long long>(p.total_procs)),
                 {util::to_hours(p.system_mtbf), 1},
                 {util::to_minutes(p.interval), 1},
                 {p.expected_failures, 1},
                 "ok"});
      if (!any_ok || p.total_time < best_t) {
        best_t = p.total_time;
        best_r = trials[i].at("r");
        best_row = i;
        any_ok = true;
      }
    }
  } else {
    // The whole sweep shares one config, so it maps straight onto the batch
    // evaluator: the Eq. 9 sphere terms are memoized across degrees and the
    // points run on the worker pool. Bitwise-identical to predict() per
    // trial.
    std::vector<double> degrees;
    degrees.reserve(trials.size());
    for (const exp::Trial& trial : trials) degrees.push_back(trial.at("r"));
    model::BatchOptions batch;
    batch.jobs = args.run_options().jobs;
    const std::vector<model::Prediction> preds =
        model::evaluate_batch(cfg, degrees, batch);
    for (std::size_t i = 0; i < trials.size(); ++i) {
      const model::Prediction& p = preds[i];
      t.add_row({{trials[i].at("r"), 2},
                 {util::to_hours(p.total_time), 1},
                 exp::Cell::count(static_cast<long long>(p.total_procs)),
                 {util::to_hours(p.system_mtbf), 1},
                 {util::to_minutes(p.interval), 1},
                 {p.expected_failures, 1}});
      if (p.total_time < best_t) {
        best_t = p.total_time;
        best_r = trials[i].at("r");
        best_row = i;
      }
    }
    any_ok = !trials.empty();
  }
  if (any_ok) t.emphasize_row(best_row, 1);
  t.emit(args);
  if (failed_cells > 0)
    args.say("%zu of %zu cells failed (kept going)\n", failed_cells,
             trials.size());
  if (!args.keep_going || any_ok)
    args.say("best degree: %.2fx\n\n", best_r);

  model::CombinedConfig probe = cfg;
  const auto x12 = model::crossover_procs(probe, 1.0, 2.0, 100, 5000000);
  if (x12)
    args.say("2x beats 1x from N = %s processes (at these machine "
             "parameters)\n",
             fmt_count(static_cast<long long>(*x12)).c_str());
  return 0;
}

runtime::WorkloadFactory make_workload(const std::string& name,
                                       const Flags& flags) {
  if (name == "cg") {
    apps::CgSpec spec;
    spec.rows_per_rank =
        static_cast<std::size_t>(flags.number("rows", 64));
    spec.max_iterations = static_cast<long>(flags.number("iterations", 150));
    spec.compute_per_iteration = flags.number("compute-sec", 5.0);
    return [spec](int rank, int n) {
      return std::make_unique<apps::CgSolver>(spec, rank, n);
    };
  }
  if (name == "stencil") {
    apps::StencilSpec spec;
    spec.iterations = static_cast<long>(flags.number("iterations", 64));
    spec.compute_per_iteration = flags.number("compute-sec", 5.0);
    const int side = static_cast<int>(flags.number("grid-side", 2));
    spec.grid = {side, side, side};
    return [spec](int, int) { return std::make_unique<apps::Stencil3d>(spec); };
  }
  if (name == "spectral") {
    apps::SpectralSpec spec;
    spec.iterations = static_cast<long>(flags.number("iterations", 32));
    spec.compute_per_iteration = flags.number("compute-sec", 5.0);
    return [spec](int, int) {
      return std::make_unique<apps::SpectralWorkload>(spec);
    };
  }
  if (name == "masterworker") {
    apps::MasterWorkerSpec spec;
    spec.rounds = static_cast<long>(flags.number("iterations", 32));
    spec.base_task_cost = flags.number("compute-sec", 1.0);
    return [spec](int rank, int n) {
      return std::make_unique<apps::MasterWorker>(spec, rank, n);
    };
  }
  // default: the CG-shaped synthetic workload
  apps::SyntheticSpec spec;
  spec.iterations = static_cast<long>(flags.number("iterations", 92));
  spec.compute_per_iteration = flags.number("compute-sec", 24.0);
  spec.halo_bytes = flags.number("halo-bytes", 300e6);
  return [spec](int, int) {
    return std::make_unique<apps::SyntheticWorkload>(spec);
  };
}

int cmd_simulate(const Flags& flags) {
  runtime::JobConfig cfg;
  cfg.num_virtual = static_cast<std::size_t>(flags.number("virtual", 32));
  cfg.redundancy = flags.number("redundancy", 2.0);
  cfg.network.bandwidth = flags.number("bandwidth", 100e6);
  cfg.storage.bandwidth = flags.number("storage-bandwidth", 2e9);
  cfg.image_bytes = flags.number("image-bytes", 1e9);
  cfg.restart_cost = flags.number("restart-sec", 500);
  cfg.fail.node_mtbf = util::hours(flags.number("mtbf-hours", 6));
  cfg.fail.seed = static_cast<std::uint64_t>(flags.number("seed", 1));
  cfg.fail.weibull_shape = flags.number("weibull-shape", 1.0);
  cfg.replication = flags.text("protocol", "push") == "pull"
                        ? runtime::Replication::kPull
                        : runtime::Replication::kPush;
  if (flags.flag("msg-plus-hash")) cfg.red.mode = red::Mode::kMsgPlusHash;
  if (flags.flag("live")) {
    cfg.live_failure_semantics = true;
    cfg.checkpoint_enabled = false;
  }
  if (flags.flag("no-checkpoint")) cfg.checkpoint_enabled = false;
  if (cfg.checkpoint_enabled)
    cfg.checkpoint_interval = flags.number("interval-sec", 300);
  if (flags.flag("no-failures")) cfg.inject_failures = false;
  cfg.ckpt_forked = flags.flag("forked-checkpoint");
  cfg.ckpt_incremental_fraction = flags.number("incremental-fraction", 1.0);

  // Unreliable-C/R knobs. Defaults keep every probability at zero and the
  // retention depth at one, which is byte-identical to the pre-fault
  // pipeline (no extra events, no extra metrics, same stdout).
  cfg.ckpt_faults.write_failure_prob =
      flags.number("ckpt-write-failure-prob", 0.0);
  cfg.ckpt_faults.corruption_prob = flags.number("ckpt-corruption-prob", 0.0);
  cfg.ckpt_faults.restart_failure_prob =
      flags.number("restart-failure-prob", 0.0);
  cfg.ckpt_faults.seed = static_cast<std::uint64_t>(
      flags.number("faults-seed", static_cast<double>(cfg.ckpt_faults.seed)));
  cfg.ckpt_retention = static_cast<int>(flags.number("ckpt-retention", 1));
  cfg.ckpt_write_retry.max_attempts = static_cast<int>(
      flags.number("write-retries", cfg.ckpt_write_retry.max_attempts));
  cfg.restart_retry.max_attempts = static_cast<int>(
      flags.number("restart-retries", cfg.restart_retry.max_attempts));
  // Presence-gated so an explicit bad value (negative, NaN) reaches
  // RetryPolicy::validate instead of being mistaken for "not given".
  if (flags.flag("retry-backoff")) {
    const double backoff = flags.number("retry-backoff", 0.0);
    cfg.ckpt_write_retry.backoff_base = backoff;
    cfg.restart_retry.backoff_base = backoff;
  }
  if (flags.flag("retry-backoff-cap")) {
    const double backoff_cap = flags.number("retry-backoff-cap", 0.0);
    cfg.ckpt_write_retry.backoff_cap = backoff_cap;
    cfg.restart_retry.backoff_cap = backoff_cap;
  }

  // run_job attaches the observability recorder when a sink is requested
  // and writes the exports after the run; main() already applied the log
  // level, so the option block carries only the sinks here.
  redcr::RunOptions options;
  options.trace_out = flags.text("trace-out", "");
  options.metrics_out = flags.text("metrics-out", "");
  runtime::JobReport report;
  try {
    report = redcr::run_job(
        cfg, make_workload(flags.text("workload", "synthetic"), flags),
        options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "redcr_cli: %s\n", e.what());
    return 1;
  }

  const bool unreliable =
      cfg.ckpt_faults.enabled() || cfg.ckpt_retention > 1;
  const char* outcome = report.completed ? "completed"
                        : report.abort   ? "ABORTED"
                                         : "GAVE UP (max episodes)";
  std::printf("outcome          : %s\n", outcome);
  std::printf("wallclock        : %.1f min\n", util::to_minutes(report.wallclock));
  std::printf("  useful work    : %.1f min\n", util::to_minutes(report.useful_work));
  std::printf("  checkpoints    : %.1f min (%d taken)\n",
              util::to_minutes(report.checkpoint_time), report.checkpoints);
  std::printf("  rework         : %.1f min\n", util::to_minutes(report.rework_time));
  std::printf("  restarts       : %.1f min (%d job failures)\n",
              util::to_minutes(report.restart_time), report.job_failures);
  // Fault-pipeline accounting only appears when the pipeline can actually
  // fail; zero-fault retention-1 stdout stays byte-identical to pre-fault
  // builds.
  if (unreliable) {
    std::printf("  ckpt writes    : %llu failed, %d epochs abandoned, "
                "%.1f min wasted\n",
                static_cast<unsigned long long>(report.ckpt_write_failures),
                report.failed_checkpoints,
                util::to_minutes(report.wasted_write_time));
    std::printf("  restart tries  : %d (%d failed, %d fallback restores)\n",
                report.restart_attempts, report.failed_restarts,
                report.fallback_restores);
    if (report.abort)
      std::printf("abort            : %s\n", report.abort->describe().c_str());
  }
  std::printf("replica deaths   : %d\n", report.physical_failures);
  std::printf("physical procs   : %zu\n", report.num_physical);
  std::printf("messages         : %s\n",
              fmt_count(static_cast<long long>(report.messages)).c_str());
  if (report.red_mismatches_detected > 0)
    std::printf("SDC detected     : %llu (corrected %llu)\n",
                static_cast<unsigned long long>(report.red_mismatches_detected),
                static_cast<unsigned long long>(report.red_mismatches_corrected));
  std::printf("\ntimeline:\n%s", runtime::render_trace(report.trace).c_str());
  return report.completed ? 0 : 1;
}

void usage() {
  std::printf(
      "redcr_cli — combined partial redundancy + checkpointing toolkit\n\n"
      "  redcr_cli model    --procs N --hours T --mtbf-years Y --alpha A\n"
      "                     --ckpt-sec C --restart-sec R (--r R | --optimize)\n"
      "  redcr_cli sweep    [same machine flags] [--step 0.25] [--jobs N]\n"
      "                     [--json] [--filter 'r=2'] [--csv DIR]\n"
      "                     [--keep-going]\n"
      "  redcr_cli run      --virtual N --redundancy R --mtbf-hours H\n"
      "                     [--workload synthetic|cg|stencil|spectral|masterworker]\n"
      "                     [--protocol push|pull] [--msg-plus-hash] [--live]\n"
      "                     [--no-checkpoint] [--no-failures] [--seed S]\n"
      "                     [--forked-checkpoint] [--incremental-fraction F]\n"
      "                     [--weibull-shape K] [--interval-sec D]\n"
      "                     [--ckpt-write-failure-prob P] [--ckpt-corruption-prob P]\n"
      "                     [--restart-failure-prob P] [--faults-seed S]\n"
      "                     [--ckpt-retention D] [--write-retries N]\n"
      "                     [--restart-retries N] [--retry-backoff B]\n"
      "                     [--retry-backoff-cap C]\n"
      "                     [--trace-out FILE] [--metrics-out FILE]\n"
      "                     (alias: simulate)\n\n"
      "Unreliable C/R: checkpoint writes fail with probability P and are\n"
      "retried with capped exponential backoff; images silently corrupt with\n"
      "probability P and are detected at restart-time validation, falling\n"
      "back through --ckpt-retention generations; restart attempts fail with\n"
      "probability P. Exhausted retries or no valid generation aborts the\n"
      "job (exit 1) with a structured reason. All draws derive from\n"
      "--faults-seed, so reruns are bit-identical at any --jobs level.\n\n"
      "Global: [--log-level debug|info|warn|error|off]  (or REDCR_LOG_LEVEL\n"
      "env var; the flag wins). --trace-out writes Chrome trace-event JSON\n"
      "(open in Perfetto or chrome://tracing); --metrics-out writes one\n"
      "JSON object per metric, newline-delimited. Use '-' for stdout.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  // Env first, explicit flag last, so --log-level wins.
  util::init_log_level_from_env();
  const std::string log_level = flags.text("log-level", "");
  if (!log_level.empty()) {
    const auto level = util::parse_log_level(log_level);
    if (!level) {
      std::fprintf(stderr,
                   "redcr_cli: invalid --log-level '%s' "
                   "(expected debug|info|warn|error|off)\n",
                   log_level.c_str());
      return 2;
    }
    util::set_log_level(*level);
  }
  if (command == "model") return cmd_model(flags);
  if (command == "sweep") return cmd_sweep(flags);
  if (command == "run" || command == "simulate") return cmd_simulate(flags);
  usage();
  return command == "--help" || command == "help" ? 0 : 2;
}
